// NEON intrinsics emulation — permutes, reversals, zips, table lookups and
// the (de)interleaving structure loads/stores vld2/vld3/vld4, vst2/vst3/vst4.
#pragma once

#include "simd/neon_emu_traits.hpp"

// ---- vext: extract a vector from a pair at a lane offset ----------------------
#define SIMDCV_EMU_EXT(suffix, VT, ET, N)                                     \
  inline VT vext_##suffix(VT a, VT b, int n) {                                \
    assert(n >= 0 && n < (N));                                                \
    VT r{};                                                                   \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = (i + n < (N)) ? a[i + n] : b[i + n - (N)];                       \
    return r;                                                                 \
  }
#define SIMDCV_EMU_EXTQ(suffix, VT, ET, N)                                    \
  inline VT vextq_##suffix(VT a, VT b, int n) {                               \
    assert(n >= 0 && n < (N));                                                \
    VT r{};                                                                   \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = (i + n < (N)) ? a[i + n] : b[i + n - (N)];                       \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_EXT)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_EXT)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_EXTQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_EXTQ)
#undef SIMDCV_EMU_EXT
#undef SIMDCV_EMU_EXTQ

// ---- reversals: vrev64 / vrev32 / vrev16 ---------------------------------------
// vrevN reverses elements within each N-bit group.
#define SIMDCV_EMU_REV(name, suffix, VT, ET, N, GROUP)                        \
  inline VT name##_##suffix(VT a) {                                           \
    constexpr int g = (GROUP) / (8 * static_cast<int>(sizeof(ET)));           \
    VT r{};                                                                   \
    for (int i = 0; i < (N); ++i) {                                           \
      const int base = (i / g) * g;                                           \
      r[i] = a[base + (g - 1 - (i - base))];                                  \
    }                                                                         \
    return r;                                                                 \
  }

SIMDCV_EMU_REV(vrev64, s8, int8x8_t, std::int8_t, 8, 64)
SIMDCV_EMU_REV(vrev64, u8, uint8x8_t, std::uint8_t, 8, 64)
SIMDCV_EMU_REV(vrev64, s16, int16x4_t, std::int16_t, 4, 64)
SIMDCV_EMU_REV(vrev64, u16, uint16x4_t, std::uint16_t, 4, 64)
SIMDCV_EMU_REV(vrev64, s32, int32x2_t, std::int32_t, 2, 64)
SIMDCV_EMU_REV(vrev64, u32, uint32x2_t, std::uint32_t, 2, 64)
SIMDCV_EMU_REV(vrev64, f32, float32x2_t, float, 2, 64)
SIMDCV_EMU_REV(vrev64q, s8, int8x16_t, std::int8_t, 16, 64)
SIMDCV_EMU_REV(vrev64q, u8, uint8x16_t, std::uint8_t, 16, 64)
SIMDCV_EMU_REV(vrev64q, s16, int16x8_t, std::int16_t, 8, 64)
SIMDCV_EMU_REV(vrev64q, u16, uint16x8_t, std::uint16_t, 8, 64)
SIMDCV_EMU_REV(vrev64q, s32, int32x4_t, std::int32_t, 4, 64)
SIMDCV_EMU_REV(vrev64q, u32, uint32x4_t, std::uint32_t, 4, 64)
SIMDCV_EMU_REV(vrev64q, f32, float32x4_t, float, 4, 64)
SIMDCV_EMU_REV(vrev32, s8, int8x8_t, std::int8_t, 8, 32)
SIMDCV_EMU_REV(vrev32, u8, uint8x8_t, std::uint8_t, 8, 32)
SIMDCV_EMU_REV(vrev32, s16, int16x4_t, std::int16_t, 4, 32)
SIMDCV_EMU_REV(vrev32, u16, uint16x4_t, std::uint16_t, 4, 32)
SIMDCV_EMU_REV(vrev32q, s8, int8x16_t, std::int8_t, 16, 32)
SIMDCV_EMU_REV(vrev32q, u8, uint8x16_t, std::uint8_t, 16, 32)
SIMDCV_EMU_REV(vrev32q, s16, int16x8_t, std::int16_t, 8, 32)
SIMDCV_EMU_REV(vrev32q, u16, uint16x8_t, std::uint16_t, 8, 32)
SIMDCV_EMU_REV(vrev16, s8, int8x8_t, std::int8_t, 8, 16)
SIMDCV_EMU_REV(vrev16, u8, uint8x8_t, std::uint8_t, 8, 16)
SIMDCV_EMU_REV(vrev16q, s8, int8x16_t, std::int8_t, 16, 16)
SIMDCV_EMU_REV(vrev16q, u8, uint8x16_t, std::uint8_t, 16, 16)
#undef SIMDCV_EMU_REV

// ---- zip / unzip / transpose (return x2 structs) --------------------------------
#define SIMDCV_EMU_ZIP(suffix, VT, ET, N, X2)                                 \
  inline X2 vzip_##suffix(VT a, VT b) {                                       \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][2 * i] = a[i];                                                 \
      r.val[0][2 * i + 1] = b[i];                                             \
      r.val[1][2 * i] = a[(N) / 2 + i];                                       \
      r.val[1][2 * i + 1] = b[(N) / 2 + i];                                   \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline X2 vuzp_##suffix(VT a, VT b) {                                       \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][i] = a[2 * i];                                                 \
      r.val[0][(N) / 2 + i] = b[2 * i];                                       \
      r.val[1][i] = a[2 * i + 1];                                             \
      r.val[1][(N) / 2 + i] = b[2 * i + 1];                                   \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline X2 vtrn_##suffix(VT a, VT b) {                                       \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][2 * i] = a[2 * i];                                             \
      r.val[0][2 * i + 1] = b[2 * i];                                         \
      r.val[1][2 * i] = a[2 * i + 1];                                         \
      r.val[1][2 * i + 1] = b[2 * i + 1];                                     \
    }                                                                         \
    return r;                                                                 \
  }

SIMDCV_EMU_ZIP(s8, int8x8_t, std::int8_t, 8, int8x8x2_t)
SIMDCV_EMU_ZIP(u8, uint8x8_t, std::uint8_t, 8, uint8x8x2_t)
SIMDCV_EMU_ZIP(s16, int16x4_t, std::int16_t, 4, int16x4x2_t)
SIMDCV_EMU_ZIP(u16, uint16x4_t, std::uint16_t, 4, uint16x4x2_t)
SIMDCV_EMU_ZIP(s32, int32x2_t, std::int32_t, 2, int32x2x2_t)
SIMDCV_EMU_ZIP(u32, uint32x2_t, std::uint32_t, 2, uint32x2x2_t)
SIMDCV_EMU_ZIP(f32, float32x2_t, float, 2, float32x2x2_t)

#define SIMDCV_EMU_ZIPQ(suffix, VT, ET, N, X2)                                \
  inline X2 vzipq_##suffix(VT a, VT b) {                                      \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][2 * i] = a[i];                                                 \
      r.val[0][2 * i + 1] = b[i];                                             \
      r.val[1][2 * i] = a[(N) / 2 + i];                                       \
      r.val[1][2 * i + 1] = b[(N) / 2 + i];                                   \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline X2 vuzpq_##suffix(VT a, VT b) {                                      \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][i] = a[2 * i];                                                 \
      r.val[0][(N) / 2 + i] = b[2 * i];                                       \
      r.val[1][i] = a[2 * i + 1];                                             \
      r.val[1][(N) / 2 + i] = b[2 * i + 1];                                   \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline X2 vtrnq_##suffix(VT a, VT b) {                                      \
    X2 r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r.val[0][2 * i] = a[2 * i];                                             \
      r.val[0][2 * i + 1] = b[2 * i];                                         \
      r.val[1][2 * i] = a[2 * i + 1];                                         \
      r.val[1][2 * i + 1] = b[2 * i + 1];                                     \
    }                                                                         \
    return r;                                                                 \
  }

SIMDCV_EMU_ZIPQ(s8, int8x16_t, std::int8_t, 16, int8x16x2_t)
SIMDCV_EMU_ZIPQ(u8, uint8x16_t, std::uint8_t, 16, uint8x16x2_t)
SIMDCV_EMU_ZIPQ(s16, int16x8_t, std::int16_t, 8, int16x8x2_t)
SIMDCV_EMU_ZIPQ(u16, uint16x8_t, std::uint16_t, 8, uint16x8x2_t)
SIMDCV_EMU_ZIPQ(s32, int32x4_t, std::int32_t, 4, int32x4x2_t)
SIMDCV_EMU_ZIPQ(u32, uint32x4_t, std::uint32_t, 4, uint32x4x2_t)
SIMDCV_EMU_ZIPQ(f32, float32x4_t, float, 4, float32x4x2_t)
#undef SIMDCV_EMU_ZIP
#undef SIMDCV_EMU_ZIPQ

// ---- table lookup: vtbl1 (out-of-range indices yield 0) -------------------------
inline uint8x8_t vtbl1_u8(uint8x8_t table, uint8x8_t idx) {
  uint8x8_t r{};
  for (int i = 0; i < 8; ++i) r[i] = idx[i] < 8 ? table[idx[i]] : 0;
  return r;
}
inline int8x8_t vtbl1_s8(int8x8_t table, int8x8_t idx) {
  int8x8_t r{};
  for (int i = 0; i < 8; ++i) {
    const auto u = static_cast<std::uint8_t>(idx[i]);
    r[i] = u < 8 ? table[u] : 0;
  }
  return r;
}
inline uint8x8_t vtbl2_u8(uint8x8x2_t table, uint8x8_t idx) {
  uint8x8_t r{};
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t u = idx[i];
    r[i] = u < 8 ? table.val[0][u] : (u < 16 ? table.val[1][u - 8] : 0);
  }
  return r;
}
// vtbx: like vtbl but out-of-range lanes keep the accumulator value.
inline uint8x8_t vtbx1_u8(uint8x8_t acc, uint8x8_t table, uint8x8_t idx) {
  uint8x8_t r = acc;
  for (int i = 0; i < 8; ++i)
    if (idx[i] < 8) r[i] = table[idx[i]];
  return r;
}

// ---- vdup_lane: broadcast one lane --------------------------------------------
#define SIMDCV_EMU_DUP_LANE(suffix, DT, QT, ND, NQ)                           \
  inline DT vdup_lane_##suffix(DT v, int lane) {                              \
    assert(lane >= 0 && lane < (ND));                                         \
    DT r{};                                                                   \
    for (int i = 0; i < (ND); ++i) r[i] = v[lane];                            \
    return r;                                                                 \
  }                                                                           \
  inline QT vdupq_lane_##suffix(DT v, int lane) {                             \
    assert(lane >= 0 && lane < (ND));                                         \
    QT r{};                                                                   \
    for (int i = 0; i < (NQ); ++i) r[i] = v[lane];                            \
    return r;                                                                 \
  }
SIMDCV_EMU_DUP_LANE(s8, int8x8_t, int8x16_t, 8, 16)
SIMDCV_EMU_DUP_LANE(u8, uint8x8_t, uint8x16_t, 8, 16)
SIMDCV_EMU_DUP_LANE(s16, int16x4_t, int16x8_t, 4, 8)
SIMDCV_EMU_DUP_LANE(u16, uint16x4_t, uint16x8_t, 4, 8)
SIMDCV_EMU_DUP_LANE(s32, int32x2_t, int32x4_t, 2, 4)
SIMDCV_EMU_DUP_LANE(u32, uint32x2_t, uint32x4_t, 2, 4)
SIMDCV_EMU_DUP_LANE(f32, float32x2_t, float32x4_t, 2, 4)
#undef SIMDCV_EMU_DUP_LANE

// ---- interleaved structure loads / stores ---------------------------------------
// vldK reads K-element records and splits them into K vectors (deinterleave);
// vstK is the inverse. Provided for the types image kernels use.
#define SIMDCV_EMU_LDST_INTERLEAVED(K, suffix, VT, ET, N, XK)                 \
  inline XK vld##K##_##suffix(const ET* p) {                                  \
    XK r{};                                                                   \
    for (int i = 0; i < (N); ++i)                                             \
      for (int k = 0; k < (K); ++k) r.val[k][i] = p[(K)*i + k];               \
    return r;                                                                 \
  }                                                                           \
  inline void vst##K##_##suffix(ET* p, XK v) {                                \
    for (int i = 0; i < (N); ++i)                                             \
      for (int k = 0; k < (K); ++k) p[(K)*i + k] = v.val[k][i];               \
  }
#define SIMDCV_EMU_LDSTQ_INTERLEAVED(K, suffix, VT, ET, N, XK)                \
  inline XK vld##K##q_##suffix(const ET* p) {                                 \
    XK r{};                                                                   \
    for (int i = 0; i < (N); ++i)                                             \
      for (int k = 0; k < (K); ++k) r.val[k][i] = p[(K)*i + k];               \
    return r;                                                                 \
  }                                                                           \
  inline void vst##K##q_##suffix(ET* p, XK v) {                               \
    for (int i = 0; i < (N); ++i)                                             \
      for (int k = 0; k < (K); ++k) p[(K)*i + k] = v.val[k][i];               \
  }

SIMDCV_EMU_LDST_INTERLEAVED(2, u8, uint8x8_t, std::uint8_t, 8, uint8x8x2_t)
SIMDCV_EMU_LDST_INTERLEAVED(3, u8, uint8x8_t, std::uint8_t, 8, uint8x8x3_t)
SIMDCV_EMU_LDST_INTERLEAVED(4, u8, uint8x8_t, std::uint8_t, 8, uint8x8x4_t)
SIMDCV_EMU_LDST_INTERLEAVED(2, f32, float32x2_t, float, 2, float32x2x2_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(2, u8, uint8x16_t, std::uint8_t, 16, uint8x16x2_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(3, u8, uint8x16_t, std::uint8_t, 16, uint8x16x3_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(4, u8, uint8x16_t, std::uint8_t, 16, uint8x16x4_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(2, s16, int16x8_t, std::int16_t, 8, int16x8x2_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(2, f32, float32x4_t, float, 4, float32x4x2_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(3, f32, float32x4_t, float, 4, float32x4x3_t)
SIMDCV_EMU_LDSTQ_INTERLEAVED(4, f32, float32x4_t, float, 4, float32x4x4_t)
#undef SIMDCV_EMU_LDST_INTERLEAVED
#undef SIMDCV_EMU_LDSTQ_INTERLEAVED
