// NEON intrinsics emulation — comparisons, logical operations, bit select.
//
// Comparison results are all-ones / all-zeros masks in the unsigned vector
// type of matching shape, exactly as on hardware, so masks compose with the
// logical family (vandq/vbslq/...) the same way NEON code expects.
#pragma once

#include "simd/neon_emu_traits.hpp"
#include "simd/neon_emu_arith.hpp"  // vabs_f32 for the absolute compares

// ---- compares: eq, ge, gt, le, lt ------------------------------------------
#define SIMDCV_EMU_CMP(suffix, VT, ET, N)                                     \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vceq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x == y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcge_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x >= y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcgt_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x > y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcle_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x <= y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vclt_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x < y; }); \
  }
#define SIMDCV_EMU_CMPQ(suffix, VT, ET, N)                                    \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vceqq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x == y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcgeq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x >= y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcgtq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x > y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcleq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x <= y; }); \
  }                                                                           \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vcltq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(a, b, [](ET x, ET y) { return x < y; }); \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_CMP)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_CMP)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_CMPQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_CMPQ)
#undef SIMDCV_EMU_CMP
#undef SIMDCV_EMU_CMPQ

// Absolute compares (float only in NEON): |a| vs |b|.
inline uint32x2_t vcage_f32(float32x2_t a, float32x2_t b) {
  return vcge_f32(vabs_f32(a), vabs_f32(b));
}
inline uint32x2_t vcagt_f32(float32x2_t a, float32x2_t b) {
  return vcgt_f32(vabs_f32(a), vabs_f32(b));
}
inline uint32x2_t vcale_f32(float32x2_t a, float32x2_t b) {
  return vcle_f32(vabs_f32(a), vabs_f32(b));
}
inline uint32x2_t vcalt_f32(float32x2_t a, float32x2_t b) {
  return vclt_f32(vabs_f32(a), vabs_f32(b));
}
inline uint32x4_t vcageq_f32(float32x4_t a, float32x4_t b) {
  return vcgeq_f32(vabsq_f32(a), vabsq_f32(b));
}
inline uint32x4_t vcagtq_f32(float32x4_t a, float32x4_t b) {
  return vcgtq_f32(vabsq_f32(a), vabsq_f32(b));
}
inline uint32x4_t vcaleq_f32(float32x4_t a, float32x4_t b) {
  return vcleq_f32(vabsq_f32(a), vabsq_f32(b));
}
inline uint32x4_t vcaltq_f32(float32x4_t a, float32x4_t b) {
  return vcltq_f32(vabsq_f32(a), vabsq_f32(b));
}

// ---- test bits: vtst (a & b != 0) -------------------------------------------
#define SIMDCV_EMU_TST(suffix, VT, ET, N)                                     \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vtst_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(                                      \
        a, b, [](ET x, ET y) { return (x & y) != 0; });                       \
  }
#define SIMDCV_EMU_TSTQ(suffix, VT, ET, N)                                    \
  inline simdcv::neon_emu_detail::VTraits<VT>::uvec vtstq_##suffix(VT a, VT b) { \
    return simdcv::neon_emu_detail::cmp(                                      \
        a, b, [](ET x, ET y) { return (x & y) != 0; });                       \
  }
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_TST)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_TSTQ)
#undef SIMDCV_EMU_TST
#undef SIMDCV_EMU_TSTQ

// ---- logical: and, orr, eor, bic, orn, mvn -----------------------------------
#define SIMDCV_EMU_LOGIC(suffix, VT, ET, N)                                   \
  inline VT vand_##suffix(VT a, VT b) { return a & b; }                       \
  inline VT vorr_##suffix(VT a, VT b) { return a | b; }                       \
  inline VT veor_##suffix(VT a, VT b) { return a ^ b; }                       \
  inline VT vbic_##suffix(VT a, VT b) { return a & ~b; }                      \
  inline VT vorn_##suffix(VT a, VT b) { return a | ~b; }                      \
  inline VT vmvn_##suffix(VT a) { return ~a; }
#define SIMDCV_EMU_LOGICQ(suffix, VT, ET, N)                                  \
  inline VT vandq_##suffix(VT a, VT b) { return a & b; }                      \
  inline VT vorrq_##suffix(VT a, VT b) { return a | b; }                      \
  inline VT veorq_##suffix(VT a, VT b) { return a ^ b; }                      \
  inline VT vbicq_##suffix(VT a, VT b) { return a & ~b; }                     \
  inline VT vornq_##suffix(VT a, VT b) { return a | ~b; }                     \
  inline VT vmvnq_##suffix(VT a) { return ~a; }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_LOGIC)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_LOGICQ)
// vmvn does not exist for 64-bit lanes in NEON; and/orr/eor do.
#define SIMDCV_EMU_LOGIC64(suffix, VT, ET, N)                                 \
  inline VT vand_##suffix(VT a, VT b) { return a & b; }                       \
  inline VT vorr_##suffix(VT a, VT b) { return a | b; }                       \
  inline VT veor_##suffix(VT a, VT b) { return a ^ b; }                       \
  inline VT vbic_##suffix(VT a, VT b) { return a & ~b; }                      \
  inline VT vorn_##suffix(VT a, VT b) { return a | ~b; }
#define SIMDCV_EMU_LOGIC64Q(suffix, VT, ET, N)                                \
  inline VT vandq_##suffix(VT a, VT b) { return a & b; }                      \
  inline VT vorrq_##suffix(VT a, VT b) { return a | b; }                      \
  inline VT veorq_##suffix(VT a, VT b) { return a ^ b; }                      \
  inline VT vbicq_##suffix(VT a, VT b) { return a & ~b; }                     \
  inline VT vornq_##suffix(VT a, VT b) { return a | ~b; }
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_LOGIC64)
SIMDCV_EMU_FOR_INT64_Q(SIMDCV_EMU_LOGIC64Q)
#undef SIMDCV_EMU_LOGIC
#undef SIMDCV_EMU_LOGICQ
#undef SIMDCV_EMU_LOGIC64
#undef SIMDCV_EMU_LOGIC64Q

// ---- bitwise select: r = (mask & a) | (~mask & b) -----------------------------
#define SIMDCV_EMU_BSL(suffix, VT, ET, N)                                     \
  inline VT vbsl_##suffix(typename simdcv::neon_emu_detail::VTraits<VT>::uvec m, \
                          VT a, VT b) {                                       \
    using D = simdcv::neon_emu_detail::VTraits<VT>::uvec;                     \
    const D ua = simdcv::neon_emu_detail::bitcast<D>(a);                      \
    const D ub = simdcv::neon_emu_detail::bitcast<D>(b);                      \
    return simdcv::neon_emu_detail::bitcast<VT>((m & ua) | (~m & ub));        \
  }
#define SIMDCV_EMU_BSLQ(suffix, VT, ET, N)                                    \
  inline VT vbslq_##suffix(typename simdcv::neon_emu_detail::VTraits<VT>::uvec m, \
                           VT a, VT b) {                                      \
    using D = simdcv::neon_emu_detail::VTraits<VT>::uvec;                     \
    const D ua = simdcv::neon_emu_detail::bitcast<D>(a);                      \
    const D ub = simdcv::neon_emu_detail::bitcast<D>(b);                      \
    return simdcv::neon_emu_detail::bitcast<VT>((m & ua) | (~m & ub));        \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_BSL)
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_BSL)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_BSL)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_BSLQ)
SIMDCV_EMU_FOR_INT64_Q(SIMDCV_EMU_BSLQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_BSLQ)
#undef SIMDCV_EMU_BSL
#undef SIMDCV_EMU_BSLQ

// ---- bit counting ---------------------------------------------------------------
inline uint8x16_t vcntq_u8(uint8x16_t a) {
  return simdcv::neon_emu_detail::map1(a, [](std::uint8_t x) {
    return static_cast<std::uint8_t>(__builtin_popcount(x));
  });
}
inline int8x16_t vcntq_s8(int8x16_t a) {
  return simdcv::neon_emu_detail::map1(a, [](std::int8_t x) {
    return static_cast<std::int8_t>(
        __builtin_popcount(static_cast<std::uint8_t>(x)));
  });
}
inline uint8x8_t vcnt_u8(uint8x8_t a) {
  return simdcv::neon_emu_detail::map1(a, [](std::uint8_t x) {
    return static_cast<std::uint8_t>(__builtin_popcount(x));
  });
}

#define SIMDCV_EMU_CLZ(suffix, VT, ET, N, BITS)                               \
  inline VT vclz_##suffix(VT a) {                                             \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      using U = std::make_unsigned_t<ET>;                                     \
      const U u = static_cast<U>(x);                                          \
      return static_cast<ET>(u == 0 ? (BITS)                                  \
                                    : __builtin_clz(u) - (32 - (BITS)));      \
    });                                                                       \
  }
SIMDCV_EMU_CLZ(s8, int8x8_t, std::int8_t, 8, 8)
SIMDCV_EMU_CLZ(u8, uint8x8_t, std::uint8_t, 8, 8)
SIMDCV_EMU_CLZ(s16, int16x4_t, std::int16_t, 4, 16)
SIMDCV_EMU_CLZ(u16, uint16x4_t, std::uint16_t, 4, 16)
SIMDCV_EMU_CLZ(s32, int32x2_t, std::int32_t, 2, 32)
SIMDCV_EMU_CLZ(u32, uint32x2_t, std::uint32_t, 2, 32)
#undef SIMDCV_EMU_CLZ

#define SIMDCV_EMU_CLZQ(suffix, VT, ET, N, BITS)                              \
  inline VT vclzq_##suffix(VT a) {                                            \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      using U = std::make_unsigned_t<ET>;                                     \
      const U u = static_cast<U>(x);                                          \
      return static_cast<ET>(u == 0 ? (BITS)                                  \
                                    : __builtin_clz(u) - (32 - (BITS)));      \
    });                                                                       \
  }
SIMDCV_EMU_CLZQ(s8, int8x16_t, std::int8_t, 16, 8)
SIMDCV_EMU_CLZQ(u8, uint8x16_t, std::uint8_t, 16, 8)
SIMDCV_EMU_CLZQ(s16, int16x8_t, std::int16_t, 8, 16)
SIMDCV_EMU_CLZQ(u16, uint16x8_t, std::uint16_t, 8, 16)
SIMDCV_EMU_CLZQ(s32, int32x4_t, std::int32_t, 4, 32)
SIMDCV_EMU_CLZQ(u32, uint32x4_t, std::uint32_t, 4, 32)
#undef SIMDCV_EMU_CLZQ
