// NEON intrinsics emulation for non-ARM hosts — umbrella header.
//
// Include via "simd/neon_compat.hpp" rather than directly; that wrapper
// selects the genuine <arm_neon.h> on ARM builds so the same kernel sources
// run on real NEON hardware and (emulated, for functional validation and the
// paper-code ablation) on x86.
#pragma once

#include "simd/neon_emu_types.hpp"
#include "simd/neon_emu_traits.hpp"
#include "simd/neon_emu_arith.hpp"
#include "simd/neon_emu_cmp.hpp"
#include "simd/neon_emu_shift_cvt.hpp"
#include "simd/neon_emu_perm.hpp"
#include "simd/neon_emu_extra.hpp"

// Clean up the X-macro lists so they do not leak into user code.
#undef SIMDCV_EMU_FOR_INT_D
#undef SIMDCV_EMU_FOR_INT_Q
#undef SIMDCV_EMU_FOR_INT64_D
#undef SIMDCV_EMU_FOR_INT64_Q
#undef SIMDCV_EMU_FOR_F32_D
#undef SIMDCV_EMU_FOR_F32_Q
#undef SIMDCV_EMU_FOR_NARROW
