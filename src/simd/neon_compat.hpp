// Portable access to NEON intrinsics: the real <arm_neon.h> on ARM targets,
// the simdcv emulation layer everywhere else. Kernel sources that are written
// against NEON intrinsic names include this header and nothing else.
#pragma once

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define SIMDCV_NEON_NATIVE 1
#else
#include "simd/neon_emu.hpp"
#define SIMDCV_NEON_NATIVE 0
#endif
