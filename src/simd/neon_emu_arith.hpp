// NEON intrinsics emulation — arithmetic families.
//
// Covers: add/sub (+ saturating, halving, widening), multiply (+ accumulate,
// subtract, widening, by-scalar), abs/neg/absolute-difference, min/max,
// pairwise add/min/max (+ widening, accumulating), and the reciprocal /
// reciprocal-sqrt estimate-and-step ops.
//
// Semantics follow the ARMv7 Advanced SIMD specification:
//  * plain integer ops wrap modulo 2^n,
//  * vq* ops saturate to the element range,
//  * vh* halve with truncation toward negative infinity, vrh* round,
//  * estimates (vrecpe/vrsqrte) are allowed by the ARM ARM to differ between
//    implementations; this emulation returns the correctly rounded value,
//    which is within the architecture's error bound.
#pragma once

#include <cmath>

#include "simd/neon_emu_traits.hpp"

// GCC vector extensions lower +,-,* directly to SIMD; use them for the plain
// wrapping ops. Unsigned overflow wraps by definition; signed vector ops on
// GCC vectors also wrap (vector arithmetic is defined modulo 2^n).

#define SIMDCV_EMU_ADDSUB(suffix, VT, ET, N)                                \
  inline VT vadd_##suffix(VT a, VT b) { return a + b; }                     \
  inline VT vsub_##suffix(VT a, VT b) { return a - b; }
#define SIMDCV_EMU_ADDSUBQ(suffix, VT, ET, N)                               \
  inline VT vaddq_##suffix(VT a, VT b) { return a + b; }                    \
  inline VT vsubq_##suffix(VT a, VT b) { return a - b; }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_ADDSUB)
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_ADDSUB)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_ADDSUB)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_ADDSUBQ)
SIMDCV_EMU_FOR_INT64_Q(SIMDCV_EMU_ADDSUBQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_ADDSUBQ)
#undef SIMDCV_EMU_ADDSUB
#undef SIMDCV_EMU_ADDSUBQ

// ---- saturating add/sub -----------------------------------------------------
#define SIMDCV_EMU_QADDSUB(prefix, name, suffix, VT, ET, N)                  \
  inline VT prefix##name##_##suffix(VT a, VT b) {                            \
    /* Signed wide type: unsigned subtraction must go negative, not wrap.    \
       The signed wider-of-signed type covers both unsigned sums and signed  \
       differences of ET. */                                                 \
    using W = simdcv::neon_emu_detail::Wider_t<std::make_signed_t<ET>>;      \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {              \
      return simdcv::neon_emu_detail::sat<ET>(                               \
          static_cast<W>(x) SIMDCV_EMU_OP_##name static_cast<W>(y));         \
    });                                                                      \
  }
#define SIMDCV_EMU_OP_qadd +
#define SIMDCV_EMU_OP_qsub -
#define SIMDCV_EMU_QADD_D(suffix, VT, ET, N) SIMDCV_EMU_QADDSUB(v, qadd, suffix, VT, ET, N)
#define SIMDCV_EMU_QADD_Q(suffix, VT, ET, N) SIMDCV_EMU_QADDSUB(v, qaddq, suffix, VT, ET, N)
#define SIMDCV_EMU_QSUB_D(suffix, VT, ET, N) SIMDCV_EMU_QADDSUB(v, qsub, suffix, VT, ET, N)
#define SIMDCV_EMU_QSUB_Q(suffix, VT, ET, N) SIMDCV_EMU_QADDSUB(v, qsubq, suffix, VT, ET, N)
// qaddq/qsubq are not operator names; expand OP macros for them too.
#define SIMDCV_EMU_OP_qaddq +
#define SIMDCV_EMU_OP_qsubq -

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_QADD_D)
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_QSUB_D)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_QADD_Q)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_QSUB_Q)
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_QADD_D)
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_QSUB_D)
SIMDCV_EMU_FOR_INT64_Q(SIMDCV_EMU_QADD_Q)
SIMDCV_EMU_FOR_INT64_Q(SIMDCV_EMU_QSUB_Q)
#undef SIMDCV_EMU_QADDSUB
#undef SIMDCV_EMU_QADD_D
#undef SIMDCV_EMU_QADD_Q
#undef SIMDCV_EMU_QSUB_D
#undef SIMDCV_EMU_QSUB_Q

// ---- halving add/sub --------------------------------------------------------
// vhadd: (x + y) >> 1 with floor semantics; vrhadd rounds; vhsub truncates
// the difference toward negative infinity.
#define SIMDCV_EMU_HALVING(suffix, VT, ET, N)                                 \
  inline VT vhadd_##suffix(VT a, VT b) {                                      \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) + static_cast<W>(y)) >> 1);   \
    });                                                                       \
  }                                                                           \
  inline VT vrhadd_##suffix(VT a, VT b) {                                     \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) + static_cast<W>(y) + 1) >> 1); \
    });                                                                       \
  }                                                                           \
  inline VT vhsub_##suffix(VT a, VT b) {                                      \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) - static_cast<W>(y)) >> 1);   \
    });                                                                       \
  }
#define SIMDCV_EMU_HALVINGQ(suffix, VT, ET, N)                                \
  inline VT vhaddq_##suffix(VT a, VT b) {                                     \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) + static_cast<W>(y)) >> 1);   \
    });                                                                       \
  }                                                                           \
  inline VT vrhaddq_##suffix(VT a, VT b) {                                    \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) + static_cast<W>(y) + 1) >> 1); \
    });                                                                       \
  }                                                                           \
  inline VT vhsubq_##suffix(VT a, VT b) {                                     \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>((static_cast<W>(x) - static_cast<W>(y)) >> 1);   \
    });                                                                       \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_HALVING)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_HALVINGQ)
#undef SIMDCV_EMU_HALVING
#undef SIMDCV_EMU_HALVINGQ

// ---- multiply, multiply-accumulate, multiply-subtract ------------------------
#define SIMDCV_EMU_MUL(suffix, VT, ET, N)                                     \
  inline VT vmul_##suffix(VT a, VT b) { return a * b; }                       \
  inline VT vmla_##suffix(VT a, VT b, VT c) { return a + b * c; }             \
  inline VT vmls_##suffix(VT a, VT b, VT c) { return a - b * c; }
#define SIMDCV_EMU_MULQ(suffix, VT, ET, N)                                    \
  inline VT vmulq_##suffix(VT a, VT b) { return a * b; }                      \
  inline VT vmlaq_##suffix(VT a, VT b, VT c) { return a + b * c; }            \
  inline VT vmlsq_##suffix(VT a, VT b, VT c) { return a - b * c; }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_MUL)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_MUL)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_MULQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_MULQ)
#undef SIMDCV_EMU_MUL
#undef SIMDCV_EMU_MULQ

// by-scalar forms ("_n_") for the types NEON provides them on.
#define SIMDCV_EMU_MUL_N(suffix, VT, ET)                                      \
  inline VT vmul_n_##suffix(VT a, ET s) { return a * vdup_n_##suffix(s); }    \
  inline VT vmla_n_##suffix(VT a, VT b, ET s) { return a + b * vdup_n_##suffix(s); } \
  inline VT vmls_n_##suffix(VT a, VT b, ET s) { return a - b * vdup_n_##suffix(s); }
#define SIMDCV_EMU_MULQ_N(suffix, VT, ET)                                     \
  inline VT vmulq_n_##suffix(VT a, ET s) { return a * vdupq_n_##suffix(s); }  \
  inline VT vmlaq_n_##suffix(VT a, VT b, ET s) { return a + b * vdupq_n_##suffix(s); } \
  inline VT vmlsq_n_##suffix(VT a, VT b, ET s) { return a - b * vdupq_n_##suffix(s); }

SIMDCV_EMU_MUL_N(s16, int16x4_t, std::int16_t)
SIMDCV_EMU_MUL_N(u16, uint16x4_t, std::uint16_t)
SIMDCV_EMU_MUL_N(s32, int32x2_t, std::int32_t)
SIMDCV_EMU_MUL_N(u32, uint32x2_t, std::uint32_t)
SIMDCV_EMU_MUL_N(f32, float32x2_t, float)
SIMDCV_EMU_MULQ_N(s16, int16x8_t, std::int16_t)
SIMDCV_EMU_MULQ_N(u16, uint16x8_t, std::uint16_t)
SIMDCV_EMU_MULQ_N(s32, int32x4_t, std::int32_t)
SIMDCV_EMU_MULQ_N(u32, uint32x4_t, std::uint32_t)
SIMDCV_EMU_MULQ_N(f32, float32x4_t, float)
#undef SIMDCV_EMU_MUL_N
#undef SIMDCV_EMU_MULQ_N

// ---- widening ("long") add/sub/mul/mla/mls ----------------------------------
#define SIMDCV_EMU_LONG(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline WQT vaddl_##nsuf(NDT a, NDT b) {                                     \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = static_cast<WET>(a[i]) + static_cast<WET>(b[i]);                 \
    return r;                                                                 \
  }                                                                           \
  inline WQT vsubl_##nsuf(NDT a, NDT b) {                                     \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = static_cast<WET>(a[i]) - static_cast<WET>(b[i]);                 \
    return r;                                                                 \
  }                                                                           \
  inline WQT vmull_##nsuf(NDT a, NDT b) {                                     \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = static_cast<WET>(a[i]) * static_cast<WET>(b[i]);                 \
    return r;                                                                 \
  }                                                                           \
  inline WQT vmlal_##nsuf(WQT acc, NDT a, NDT b) {                            \
    for (int i = 0; i < (N); ++i)                                             \
      acc[i] += static_cast<WET>(a[i]) * static_cast<WET>(b[i]);              \
    return acc;                                                               \
  }                                                                           \
  inline WQT vmlsl_##nsuf(WQT acc, NDT a, NDT b) {                            \
    for (int i = 0; i < (N); ++i)                                             \
      acc[i] -= static_cast<WET>(a[i]) * static_cast<WET>(b[i]);              \
    return acc;                                                               \
  }                                                                           \
  inline WQT vaddw_##nsuf(WQT a, NDT b) {                                     \
    for (int i = 0; i < (N); ++i) a[i] += static_cast<WET>(b[i]);             \
    return a;                                                                 \
  }                                                                           \
  inline WQT vsubw_##nsuf(WQT a, NDT b) {                                     \
    for (int i = 0; i < (N); ++i) a[i] -= static_cast<WET>(b[i]);             \
    return a;                                                                 \
  }

SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_LONG)
#undef SIMDCV_EMU_LONG

// Widening absolute difference (+ accumulate): vabdl / vabal.
#define SIMDCV_EMU_ABDL(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline WQT vabdl_##nsuf(NDT a, NDT b) {                                     \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = a[i] > b[i] ? static_cast<WET>(a[i]) - static_cast<WET>(b[i])    \
                         : static_cast<WET>(b[i]) - static_cast<WET>(a[i]);   \
    return r;                                                                 \
  }                                                                           \
  inline WQT vabal_##nsuf(WQT acc, NDT a, NDT b) {                            \
    return acc + vabdl_##nsuf(a, b);                                          \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_ABDL)
#undef SIMDCV_EMU_ABDL

// ---- widen ("move long") ----------------------------------------------------
#define SIMDCV_EMU_MOVL(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline WQT vmovl_##nsuf(NDT a) {                                            \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i) r[i] = static_cast<WET>(a[i]);              \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_MOVL)
#undef SIMDCV_EMU_MOVL

// ---- min / max ----------------------------------------------------------------
#define SIMDCV_EMU_MINMAX(suffix, VT, ET, N)                                  \
  inline VT vmin_##suffix(VT a, VT b) {                                       \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) { return x < y ? x : y; }); \
  }                                                                           \
  inline VT vmax_##suffix(VT a, VT b) {                                       \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) { return x > y ? x : y; }); \
  }
#define SIMDCV_EMU_MINMAXQ(suffix, VT, ET, N)                                 \
  inline VT vminq_##suffix(VT a, VT b) {                                      \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) { return x < y ? x : y; }); \
  }                                                                           \
  inline VT vmaxq_##suffix(VT a, VT b) {                                      \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) { return x > y ? x : y; }); \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_MINMAX)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_MINMAX)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_MINMAXQ)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_MINMAXQ)
#undef SIMDCV_EMU_MINMAX
#undef SIMDCV_EMU_MINMAXQ

// ---- absolute value / negate -------------------------------------------------
// vabs on the most negative signed value wraps (stays INT_MIN); vqabs saturates.
#define SIMDCV_EMU_ABSNEG(suffix, VT, ET, N)                                  \
  inline VT vabs_##suffix(VT a) {                                             \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      return static_cast<ET>(x < 0 ? -static_cast<ET>(x) : x);                \
    });                                                                       \
  }                                                                           \
  inline VT vqabs_##suffix(VT a) {                                            \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      return simdcv::neon_emu_detail::sat<ET>(                                \
          x < 0 ? -static_cast<W>(x) : static_cast<W>(x));                    \
    });                                                                       \
  }                                                                           \
  inline VT vneg_##suffix(VT a) { return -a; }
#define SIMDCV_EMU_ABSNEGQ(suffix, VT, ET, N)                                 \
  inline VT vabsq_##suffix(VT a) {                                            \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      return static_cast<ET>(x < 0 ? -static_cast<ET>(x) : x);                \
    });                                                                       \
  }                                                                           \
  inline VT vqabsq_##suffix(VT a) {                                           \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      return simdcv::neon_emu_detail::sat<ET>(                                \
          x < 0 ? -static_cast<W>(x) : static_cast<W>(x));                    \
    });                                                                       \
  }                                                                           \
  inline VT vnegq_##suffix(VT a) { return -a; }

SIMDCV_EMU_ABSNEG(s8, int8x8_t, std::int8_t, 8)
SIMDCV_EMU_ABSNEG(s16, int16x4_t, std::int16_t, 4)
SIMDCV_EMU_ABSNEG(s32, int32x2_t, std::int32_t, 2)
SIMDCV_EMU_ABSNEGQ(s8, int8x16_t, std::int8_t, 16)
SIMDCV_EMU_ABSNEGQ(s16, int16x8_t, std::int16_t, 8)
SIMDCV_EMU_ABSNEGQ(s32, int32x4_t, std::int32_t, 4)
#undef SIMDCV_EMU_ABSNEG
#undef SIMDCV_EMU_ABSNEGQ

inline float32x2_t vabs_f32(float32x2_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return std::fabs(x); });
}
inline float32x4_t vabsq_f32(float32x4_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return std::fabs(x); });
}
inline float32x2_t vneg_f32(float32x2_t a) { return -a; }
inline float32x4_t vnegq_f32(float32x4_t a) { return -a; }

// ---- absolute difference (+ accumulate) ---------------------------------------
// Computed order-insensitively so unsigned inputs never underflow.
#define SIMDCV_EMU_ABD(suffix, VT, ET, N)                                     \
  inline VT vabd_##suffix(VT a, VT b) {                                       \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>(x > y ? x - y : y - x);                          \
    });                                                                       \
  }                                                                           \
  inline VT vaba_##suffix(VT acc, VT a, VT b) {                               \
    return acc + vabd_##suffix(a, b);                                         \
  }
#define SIMDCV_EMU_ABDQ(suffix, VT, ET, N)                                    \
  inline VT vabdq_##suffix(VT a, VT b) {                                      \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      return static_cast<ET>(x > y ? x - y : y - x);                          \
    });                                                                       \
  }                                                                           \
  inline VT vabaq_##suffix(VT acc, VT a, VT b) {                              \
    return acc + vabdq_##suffix(a, b);                                        \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_ABD)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_ABDQ)
#undef SIMDCV_EMU_ABD
#undef SIMDCV_EMU_ABDQ

inline float32x2_t vabd_f32(float32x2_t a, float32x2_t b) { return vabs_f32(a - b); }
inline float32x4_t vabdq_f32(float32x4_t a, float32x4_t b) { return vabsq_f32(a - b); }

// ---- pairwise ops (D registers only, as in ARMv7) ------------------------------
#define SIMDCV_EMU_PAIRWISE(suffix, VT, ET, N)                                \
  inline VT vpadd_##suffix(VT a, VT b) {                                      \
    VT r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r[i] = static_cast<ET>(a[2 * i] + a[2 * i + 1]);                        \
      r[(N) / 2 + i] = static_cast<ET>(b[2 * i] + b[2 * i + 1]);              \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline VT vpmax_##suffix(VT a, VT b) {                                      \
    VT r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r[i] = a[2 * i] > a[2 * i + 1] ? a[2 * i] : a[2 * i + 1];               \
      r[(N) / 2 + i] = b[2 * i] > b[2 * i + 1] ? b[2 * i] : b[2 * i + 1];     \
    }                                                                         \
    return r;                                                                 \
  }                                                                           \
  inline VT vpmin_##suffix(VT a, VT b) {                                      \
    VT r{};                                                                   \
    for (int i = 0; i < (N) / 2; ++i) {                                       \
      r[i] = a[2 * i] < a[2 * i + 1] ? a[2 * i] : a[2 * i + 1];               \
      r[(N) / 2 + i] = b[2 * i] < b[2 * i + 1] ? b[2 * i] : b[2 * i + 1];     \
    }                                                                         \
    return r;                                                                 \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_PAIRWISE)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_PAIRWISE)
#undef SIMDCV_EMU_PAIRWISE

// ---- pairwise widening add / accumulate ----------------------------------------
// Explicit forms (narrow Q -> wide Q with N wide lanes; narrow D -> wide D).
#define SIMDCV_EMU_PADDL_Q(nsuf, NQT, WQT, NET, WET, NW)                      \
  inline WQT vpaddlq_##nsuf(NQT a) {                                          \
    WQT r{};                                                                  \
    for (int i = 0; i < (NW); ++i)                                            \
      r[i] = static_cast<WET>(a[2 * i]) + static_cast<WET>(a[2 * i + 1]);     \
    return r;                                                                 \
  }                                                                           \
  inline WQT vpadalq_##nsuf(WQT acc, NQT a) {                                 \
    for (int i = 0; i < (NW); ++i)                                            \
      acc[i] += static_cast<WET>(a[2 * i]) + static_cast<WET>(a[2 * i + 1]);  \
    return acc;                                                               \
  }
#define SIMDCV_EMU_PADDL_D(nsuf, NDT, WDT, NET, WET, NW)                      \
  inline WDT vpaddl_##nsuf(NDT a) {                                           \
    WDT r{};                                                                  \
    for (int i = 0; i < (NW); ++i)                                            \
      r[i] = static_cast<WET>(a[2 * i]) + static_cast<WET>(a[2 * i + 1]);     \
    return r;                                                                 \
  }                                                                           \
  inline WDT vpadal_##nsuf(WDT acc, NDT a) {                                  \
    for (int i = 0; i < (NW); ++i)                                            \
      acc[i] += static_cast<WET>(a[2 * i]) + static_cast<WET>(a[2 * i + 1]);  \
    return acc;                                                               \
  }

SIMDCV_EMU_PADDL_Q(s8, int8x16_t, int16x8_t, std::int8_t, std::int16_t, 8)
SIMDCV_EMU_PADDL_Q(u8, uint8x16_t, uint16x8_t, std::uint8_t, std::uint16_t, 8)
SIMDCV_EMU_PADDL_Q(s16, int16x8_t, int32x4_t, std::int16_t, std::int32_t, 4)
SIMDCV_EMU_PADDL_Q(u16, uint16x8_t, uint32x4_t, std::uint16_t, std::uint32_t, 4)
SIMDCV_EMU_PADDL_Q(s32, int32x4_t, int64x2_t, std::int32_t, std::int64_t, 2)
SIMDCV_EMU_PADDL_Q(u32, uint32x4_t, uint64x2_t, std::uint32_t, std::uint64_t, 2)
SIMDCV_EMU_PADDL_D(s8, int8x8_t, int16x4_t, std::int8_t, std::int16_t, 4)
SIMDCV_EMU_PADDL_D(u8, uint8x8_t, uint16x4_t, std::uint8_t, std::uint16_t, 4)
SIMDCV_EMU_PADDL_D(s16, int16x4_t, int32x2_t, std::int16_t, std::int32_t, 2)
SIMDCV_EMU_PADDL_D(u16, uint16x4_t, uint32x2_t, std::uint16_t, std::uint32_t, 2)
SIMDCV_EMU_PADDL_D(s32, int32x2_t, int64x1_t, std::int32_t, std::int64_t, 1)
SIMDCV_EMU_PADDL_D(u32, uint32x2_t, uint64x1_t, std::uint32_t, std::uint64_t, 1)
#undef SIMDCV_EMU_PADDL_Q
#undef SIMDCV_EMU_PADDL_D

// ---- reciprocal / rsqrt estimate and Newton step --------------------------------
inline float32x2_t vrecpe_f32(float32x2_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return 1.0f / x; });
}
inline float32x4_t vrecpeq_f32(float32x4_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return 1.0f / x; });
}
inline float32x2_t vrecps_f32(float32x2_t a, float32x2_t b) {
  return simdcv::neon_emu_detail::map2(a, b, [](float x, float y) { return 2.0f - x * y; });
}
inline float32x4_t vrecpsq_f32(float32x4_t a, float32x4_t b) {
  return simdcv::neon_emu_detail::map2(a, b, [](float x, float y) { return 2.0f - x * y; });
}
inline float32x2_t vrsqrte_f32(float32x2_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return 1.0f / std::sqrt(x); });
}
inline float32x4_t vrsqrteq_f32(float32x4_t a) {
  return simdcv::neon_emu_detail::map1(a, [](float x) { return 1.0f / std::sqrt(x); });
}
inline float32x2_t vrsqrts_f32(float32x2_t a, float32x2_t b) {
  return simdcv::neon_emu_detail::map2(
      a, b, [](float x, float y) { return (3.0f - x * y) / 2.0f; });
}
inline float32x4_t vrsqrtsq_f32(float32x4_t a, float32x4_t b) {
  return simdcv::neon_emu_detail::map2(
      a, b, [](float x, float y) { return (3.0f - x * y) / 2.0f; });
}
