// NEON intrinsics emulation — shifts, type conversions, narrowing/packing.
//
// Includes the ops the paper's benchmark-1 kernel is built from:
//   vcvtq_s32_f32 (float -> int32, truncate-toward-zero, saturating, NaN -> 0)
//   vqmovn_s32    (int32 -> int16 saturating narrow)
// plus vcvtnq_s32_f32, the ARMv8 round-to-nearest-even variant, which the
// library's NEON HAND kernel uses to stay bit-exact with the scalar
// reference (the paper's ARMv7 listing truncates; see DESIGN.md).
#pragma once

#include "simd/neon_emu_traits.hpp"

#if defined(SIMDCV_NEON_EMU_SSE2)
#include <emmintrin.h>
#endif

// ---- shifts by immediate -----------------------------------------------------
// NEON allows shift counts 1..bits for right shifts and 0..bits-1 for left;
// we assert the union of those ranges. Right shift of signed lanes is
// arithmetic, of unsigned lanes logical, as the element type dictates.
#define SIMDCV_EMU_SHIFT_N(suffix, VT, ET, N)                                 \
  inline VT vshl_n_##suffix(VT a, int n) {                                    \
    assert(n >= 0 && n < static_cast<int>(8 * sizeof(ET)));                   \
    return simdcv::neon_emu_detail::map1(                                     \
        a, [n](ET x) { return static_cast<ET>(x << n); });                    \
  }                                                                           \
  inline VT vshr_n_##suffix(VT a, int n) {                                    \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(ET)));                  \
    const int eff = n >= static_cast<int>(8 * sizeof(ET))                     \
                        ? static_cast<int>(8 * sizeof(ET)) - 1                \
                        : n;                                                  \
    if (n >= static_cast<int>(8 * sizeof(ET)) && !std::is_signed_v<ET>)       \
      return VT{};                                                            \
    return simdcv::neon_emu_detail::map1(                                     \
        a, [eff](ET x) { return static_cast<ET>(x >> eff); });                \
  }                                                                           \
  inline VT vrshr_n_##suffix(VT a, int n) {                                   \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(ET)));                  \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map1(a, [n](ET x) {                       \
      return static_cast<ET>((static_cast<W>(x) + (W{1} << (n - 1))) >> n);   \
    });                                                                       \
  }                                                                           \
  inline VT vsra_n_##suffix(VT acc, VT a, int n) {                            \
    return acc + vshr_n_##suffix(a, n);                                       \
  }                                                                           \
  inline VT vrsra_n_##suffix(VT acc, VT a, int n) {                           \
    return acc + vrshr_n_##suffix(a, n);                                      \
  }
#define SIMDCV_EMU_SHIFTQ_N(suffix, VT, ET, N)                                \
  inline VT vshlq_n_##suffix(VT a, int n) {                                   \
    assert(n >= 0 && n < static_cast<int>(8 * sizeof(ET)));                   \
    return simdcv::neon_emu_detail::map1(                                     \
        a, [n](ET x) { return static_cast<ET>(x << n); });                    \
  }                                                                           \
  inline VT vshrq_n_##suffix(VT a, int n) {                                   \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(ET)));                  \
    const int eff = n >= static_cast<int>(8 * sizeof(ET))                     \
                        ? static_cast<int>(8 * sizeof(ET)) - 1                \
                        : n;                                                  \
    if (n >= static_cast<int>(8 * sizeof(ET)) && !std::is_signed_v<ET>)       \
      return VT{};                                                            \
    return simdcv::neon_emu_detail::map1(                                     \
        a, [eff](ET x) { return static_cast<ET>(x >> eff); });                \
  }                                                                           \
  inline VT vrshrq_n_##suffix(VT a, int n) {                                  \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(ET)));                  \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map1(a, [n](ET x) {                       \
      return static_cast<ET>((static_cast<W>(x) + (W{1} << (n - 1))) >> n);   \
    });                                                                       \
  }                                                                           \
  inline VT vsraq_n_##suffix(VT acc, VT a, int n) {                           \
    return acc + vshrq_n_##suffix(a, n);                                      \
  }                                                                           \
  inline VT vrsraq_n_##suffix(VT acc, VT a, int n) {                          \
    return acc + vrshrq_n_##suffix(a, n);                                     \
  }

SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_SHIFT_N)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_SHIFTQ_N)
#undef SIMDCV_EMU_SHIFT_N
#undef SIMDCV_EMU_SHIFTQ_N

// ---- shift by signed vector (vshl): negative counts shift right ---------------
#define SIMDCV_EMU_VSHL(suffix, VT, ET, N, SVT)                               \
  inline VT vshl_##suffix(VT a, SVT count) {                                  \
    VT r{};                                                                   \
    constexpr int bits = static_cast<int>(8 * sizeof(ET));                    \
    for (int i = 0; i < (N); ++i) {                                           \
      const int c = static_cast<int>(                                         \
          static_cast<std::int8_t>(count[i] & 0xff));                         \
      if (c >= bits) {                                                        \
        r[i] = 0;                                                             \
      } else if (c >= 0) {                                                    \
        r[i] = static_cast<ET>(a[i] << c);                                    \
      } else if (c > -bits) {                                                 \
        r[i] = static_cast<ET>(a[i] >> -c);                                   \
      } else {                                                                \
        r[i] = static_cast<ET>(std::is_signed_v<ET> ? (a[i] >> (bits - 1)) : 0); \
      }                                                                       \
    }                                                                         \
    return r;                                                                 \
  }
SIMDCV_EMU_VSHL(s8, int8x8_t, std::int8_t, 8, int8x8_t)
SIMDCV_EMU_VSHL(u8, uint8x8_t, std::uint8_t, 8, int8x8_t)
SIMDCV_EMU_VSHL(s16, int16x4_t, std::int16_t, 4, int16x4_t)
SIMDCV_EMU_VSHL(u16, uint16x4_t, std::uint16_t, 4, int16x4_t)
SIMDCV_EMU_VSHL(s32, int32x2_t, std::int32_t, 2, int32x2_t)
SIMDCV_EMU_VSHL(u32, uint32x2_t, std::uint32_t, 2, int32x2_t)
#undef SIMDCV_EMU_VSHL

#define SIMDCV_EMU_VSHLQ(suffix, VT, ET, N, SVT)                              \
  inline VT vshlq_##suffix(VT a, SVT count) {                                 \
    VT r{};                                                                   \
    constexpr int bits = static_cast<int>(8 * sizeof(ET));                    \
    for (int i = 0; i < (N); ++i) {                                           \
      const int c = static_cast<int>(                                         \
          static_cast<std::int8_t>(count[i] & 0xff));                         \
      if (c >= bits) {                                                        \
        r[i] = 0;                                                             \
      } else if (c >= 0) {                                                    \
        r[i] = static_cast<ET>(a[i] << c);                                    \
      } else if (c > -bits) {                                                 \
        r[i] = static_cast<ET>(a[i] >> -c);                                   \
      } else {                                                                \
        r[i] = static_cast<ET>(std::is_signed_v<ET> ? (a[i] >> (bits - 1)) : 0); \
      }                                                                       \
    }                                                                         \
    return r;                                                                 \
  }
SIMDCV_EMU_VSHLQ(s8, int8x16_t, std::int8_t, 16, int8x16_t)
SIMDCV_EMU_VSHLQ(u8, uint8x16_t, std::uint8_t, 16, int8x16_t)
SIMDCV_EMU_VSHLQ(s16, int16x8_t, std::int16_t, 8, int16x8_t)
SIMDCV_EMU_VSHLQ(u16, uint16x8_t, std::uint16_t, 8, int16x8_t)
SIMDCV_EMU_VSHLQ(s32, int32x4_t, std::int32_t, 4, int32x4_t)
SIMDCV_EMU_VSHLQ(u32, uint32x4_t, std::uint32_t, 4, int32x4_t)
#undef SIMDCV_EMU_VSHLQ

// ---- widening shift left: vshll_n ---------------------------------------------
#define SIMDCV_EMU_SHLL(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline WQT vshll_n_##nsuf(NDT a, int n) {                                   \
    assert(n >= 0 && n <= static_cast<int>(8 * sizeof(NET)));                 \
    WQT r{};                                                                  \
    for (int i = 0; i < (N); ++i) r[i] = static_cast<WET>(a[i]) << n;         \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_SHLL)
#undef SIMDCV_EMU_SHLL

// ---- narrowing shifts: vshrn_n (truncate), vrshrn_n (round) --------------------
#define SIMDCV_EMU_SHRN(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline NDT vshrn_n_##wsuf(WQT a, int n) {                                   \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(NET)));                 \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i) r[i] = static_cast<NET>(a[i] >> n);         \
    return r;                                                                 \
  }                                                                           \
  inline NDT vrshrn_n_##wsuf(WQT a, int n) {                                  \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(NET)));                 \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = static_cast<NET>((a[i] + (WET{1} << (n - 1))) >> n);             \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_SHRN)
#undef SIMDCV_EMU_SHRN

// ---- saturating narrows: vqmovn, vqmovun, vmovn --------------------------------
#define SIMDCV_EMU_MOVN(nsuf, NDT, wsuf, WQT, NET, WET, N)                    \
  inline NDT vmovn_##wsuf(WQT a) {                                            \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i) r[i] = static_cast<NET>(a[i]);              \
    return r;                                                                 \
  }                                                                           \
  inline NDT vqmovn_##wsuf(WQT a) {                                           \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = simdcv::neon_emu_detail::sat<NET>(a[i]);                         \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_MOVN)
#undef SIMDCV_EMU_MOVN

// Signed wide -> unsigned narrow with saturation at zero.
#define SIMDCV_EMU_QMOVUN(nsuf, NDT, wsuf, WQT, NET, WET, N)                  \
  inline NDT vqmovun_##wsuf(WQT a) {                                          \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = simdcv::neon_emu_detail::sat<NET>(a[i]);                         \
    return r;                                                                 \
  }
SIMDCV_EMU_QMOVUN(u8, uint8x8_t, s16, int16x8_t, std::uint8_t, std::int16_t, 8)
SIMDCV_EMU_QMOVUN(u16, uint16x4_t, s32, int32x4_t, std::uint16_t, std::int32_t, 4)
SIMDCV_EMU_QMOVUN(u32, uint32x2_t, s64, int64x2_t, std::uint32_t, std::int64_t, 2)
#undef SIMDCV_EMU_QMOVUN

// Saturating narrowing right shifts (used by fixed-point filter kernels).
#define SIMDCV_EMU_QSHRN(nsuf, NDT, wsuf, WQT, NET, WET, N)                   \
  inline NDT vqshrn_n_##wsuf(WQT a, int n) {                                  \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(NET)));                 \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = simdcv::neon_emu_detail::sat<NET>(a[i] >> n);                    \
    return r;                                                                 \
  }                                                                           \
  inline NDT vqrshrn_n_##wsuf(WQT a, int n) {                                 \
    assert(n >= 1 && n <= static_cast<int>(8 * sizeof(NET)));                 \
    NDT r{};                                                                  \
    for (int i = 0; i < (N); ++i)                                             \
      r[i] = simdcv::neon_emu_detail::sat<NET>((a[i] + (WET{1} << (n - 1))) >> n); \
    return r;                                                                 \
  }
SIMDCV_EMU_FOR_NARROW(SIMDCV_EMU_QSHRN)
#undef SIMDCV_EMU_QSHRN

inline uint8x8_t vqrshrun_n_s16(int16x8_t a, int n) {
  assert(n >= 1 && n <= 8);
  uint8x8_t r{};
  for (int i = 0; i < 8; ++i)
    r[i] = simdcv::neon_emu_detail::sat<std::uint8_t>(
        (a[i] + (std::int16_t{1} << (n - 1))) >> n);
  return r;
}
inline uint16x4_t vqrshrun_n_s32(int32x4_t a, int n) {
  assert(n >= 1 && n <= 16);
  uint16x4_t r{};
  for (int i = 0; i < 4; ++i)
    r[i] = simdcv::neon_emu_detail::sat<std::uint16_t>(
        (a[i] + (std::int32_t{1} << (n - 1))) >> n);
  return r;
}

// ---- conversions int <-> float ---------------------------------------------------
// vcvt*_s32_f32 truncates toward zero and saturates; NaN converts to 0.
// (On x86, cvttps2dq returns INT_MIN for out-of-range/NaN — we fix those
// lanes up so the emulation matches ARM hardware bit-exactly.)
inline int32x4_t vcvtq_s32_f32(float32x4_t a) {
#if defined(SIMDCV_NEON_EMU_SSE2)
  const __m128 v = simdcv::neon_emu_detail::to_m128(a);
  __m128i t = _mm_cvttps_epi32(v);  // truncate; overflow/NaN -> INT_MIN
  // Positive overflow lanes (v >= 2^31) must saturate to INT_MAX.
  const __m128 too_big = _mm_cmpge_ps(v, _mm_set1_ps(2147483648.0f));
  t = _mm_xor_si128(t, _mm_and_si128(_mm_castps_si128(too_big),
                                     _mm_set1_epi32(-1) /* flips INT_MIN->INT_MAX-ish */));
  // xor INT_MIN with all-ones gives INT_MAX exactly.
  // NaN lanes must become 0.
  const __m128 is_nan = _mm_cmpunord_ps(v, v);
  t = _mm_andnot_si128(_mm_castps_si128(is_nan), t);
  return simdcv::neon_emu_detail::from_m128i<int32x4_t>(t);
#else
  return simdcv::neon_emu_detail::mapTo<int32x4_t>(a, [](float x) -> std::int32_t {
    if (x != x) return 0;
    if (x >= 2147483648.0f) return 2147483647;
    if (x <= -2147483648.0f) return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(x);
  });
#endif
}

inline int32x2_t vcvt_s32_f32(float32x2_t a) {
  return simdcv::neon_emu_detail::mapTo<int32x2_t>(a, [](float x) -> std::int32_t {
    if (x != x) return 0;
    if (x >= 2147483648.0f) return 2147483647;
    if (x <= -2147483648.0f) return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(x);
  });
}

inline uint32x4_t vcvtq_u32_f32(float32x4_t a) {
  return simdcv::neon_emu_detail::mapTo<uint32x4_t>(a, [](float x) -> std::uint32_t {
    if (!(x > 0.0f)) return 0;  // negatives and NaN saturate to 0
    if (x >= 4294967296.0f) return 4294967295u;
    return static_cast<std::uint32_t>(x);
  });
}
inline uint32x2_t vcvt_u32_f32(float32x2_t a) {
  return simdcv::neon_emu_detail::mapTo<uint32x2_t>(a, [](float x) -> std::uint32_t {
    if (!(x > 0.0f)) return 0;
    if (x >= 4294967296.0f) return 4294967295u;
    return static_cast<std::uint32_t>(x);
  });
}

inline float32x4_t vcvtq_f32_s32(int32x4_t a) {
#if defined(SIMDCV_NEON_EMU_SSE2)
  return simdcv::neon_emu_detail::from_m128(
      _mm_cvtepi32_ps(simdcv::neon_emu_detail::to_m128i(a)));
#else
  return simdcv::neon_emu_detail::mapTo<float32x4_t>(
      a, [](std::int32_t x) { return static_cast<float>(x); });
#endif
}
inline float32x2_t vcvt_f32_s32(int32x2_t a) {
  return simdcv::neon_emu_detail::mapTo<float32x2_t>(
      a, [](std::int32_t x) { return static_cast<float>(x); });
}
inline float32x4_t vcvtq_f32_u32(uint32x4_t a) {
  return simdcv::neon_emu_detail::mapTo<float32x4_t>(
      a, [](std::uint32_t x) { return static_cast<float>(x); });
}
inline float32x2_t vcvt_f32_u32(uint32x2_t a) {
  return simdcv::neon_emu_detail::mapTo<float32x2_t>(
      a, [](std::uint32_t x) { return static_cast<float>(x); });
}

// ARMv8 round-to-nearest-even conversion (vcvtnq). Saturating, NaN -> 0.
inline int32x4_t vcvtnq_s32_f32(float32x4_t a) {
#if defined(SIMDCV_NEON_EMU_SSE2)
  const __m128 v = simdcv::neon_emu_detail::to_m128(a);
  __m128i t = _mm_cvtps_epi32(v);  // nearest-even under default MXCSR
  const __m128 too_big = _mm_cmpge_ps(v, _mm_set1_ps(2147483648.0f));
  t = _mm_xor_si128(t, _mm_and_si128(_mm_castps_si128(too_big), _mm_set1_epi32(-1)));
  const __m128 is_nan = _mm_cmpunord_ps(v, v);
  t = _mm_andnot_si128(_mm_castps_si128(is_nan), t);
  return simdcv::neon_emu_detail::from_m128i<int32x4_t>(t);
#else
  return simdcv::neon_emu_detail::mapTo<int32x4_t>(a, [](float x) -> std::int32_t {
    if (x != x) return 0;
    if (x >= 2147483648.0f) return 2147483647;
    if (x <= -2147483648.0f) return std::numeric_limits<std::int32_t>::min();
    return static_cast<std::int32_t>(__builtin_rintf(x));
  });
#endif
}

// Fixed-point conversions: vcvtq_n_* (n fractional bits).
inline float32x4_t vcvtq_n_f32_s32(int32x4_t a, int n) {
  assert(n >= 1 && n <= 32);
  const float scale = 1.0f / static_cast<float>(1ull << n);
  return vcvtq_f32_s32(a) * vdupq_n_f32(scale);
}
inline float32x4_t vcvtq_n_f32_u32(uint32x4_t a, int n) {
  assert(n >= 1 && n <= 32);
  const float scale = 1.0f / static_cast<float>(1ull << n);
  return vcvtq_f32_u32(a) * vdupq_n_f32(scale);
}
inline int32x4_t vcvtq_n_s32_f32(float32x4_t a, int n) {
  assert(n >= 1 && n <= 32);
  const float scale = static_cast<float>(1ull << n);
  return vcvtq_s32_f32(a * vdupq_n_f32(scale));
}
inline uint32x4_t vcvtq_n_u32_f32(float32x4_t a, int n) {
  assert(n >= 1 && n <= 32);
  const float scale = static_cast<float>(1ull << n);
  return vcvtq_u32_f32(a * vdupq_n_f32(scale));
}
