#include "simd/features.hpp"

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SIMDCV_HOST_X86 1
#endif

namespace simdcv {

const char* toString(KernelPath path) noexcept {
  switch (path) {
    case KernelPath::ScalarNoVec: return "scalar-novec";
    case KernelPath::Auto: return "auto";
    case KernelPath::Sse2: return "sse2";
    case KernelPath::Neon: return "neon";
    case KernelPath::Avx2: return "avx2";
    case KernelPath::Default: return "default";
  }
  return "?";
}

namespace {

#if defined(SIMDCV_HOST_X86)
std::string cpuidVendor() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(0, &eax, &ebx, &ecx, &edx)) return {};
  char v[13] = {};
  // Vendor string is laid out EBX, EDX, ECX.
  for (int i = 0; i < 4; ++i) v[i] = static_cast<char>(ebx >> (8 * i));
  for (int i = 0; i < 4; ++i) v[4 + i] = static_cast<char>(edx >> (8 * i));
  for (int i = 0; i < 4; ++i) v[8 + i] = static_cast<char>(ecx >> (8 * i));
  return v;
}

std::string cpuidBrand() {
  unsigned regs[4] = {};
  if (!__get_cpuid(0x80000000u, &regs[0], &regs[1], &regs[2], &regs[3]) ||
      regs[0] < 0x80000004u) {
    return {};
  }
  char brand[49] = {};
  for (unsigned leaf = 0; leaf < 3; ++leaf) {
    __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
    for (int r = 0; r < 4; ++r)
      for (int b = 0; b < 4; ++b)
        brand[leaf * 16 + r * 4 + b] = static_cast<char>(regs[r] >> (8 * b));
  }
  // Trim leading spaces that Intel pads brand strings with.
  const char* p = brand;
  while (*p == ' ') ++p;
  return p;
}
#endif

CpuFeatures detect() {
  CpuFeatures f;
  f.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (f.logical_cpus <= 0) f.logical_cpus = 1;
#if defined(SIMDCV_HOST_X86)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1u;
    f.sse3 = (ecx >> 0) & 1u;
    f.ssse3 = (ecx >> 9) & 1u;
    f.sse41 = (ecx >> 19) & 1u;
    f.sse42 = (ecx >> 20) & 1u;
    f.avx = (ecx >> 28) & 1u;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1u;
  }
  f.vendor = cpuidVendor();
  f.brand = cpuidBrand();
  f.neon_emulated = true;  // neon_emu.hpp provides the intrinsics
#elif defined(__ARM_NEON)
  f.neon = true;
  f.vendor = "ARM";
#else
  f.neon_emulated = true;  // scalar emulation works everywhere
#endif
  return f;
}

std::atomic<bool> g_use_optimized{true};

KernelPath defaultPreferred() {
  const CpuFeatures& f = cpuFeatures();
  if (f.neon) return KernelPath::Neon;
  if (f.sse2) return KernelPath::Sse2;
  return KernelPath::Auto;
}

std::atomic<KernelPath> g_preferred{KernelPath::Default};

}  // namespace

const CpuFeatures& cpuFeatures() noexcept {
  static const CpuFeatures f = detect();
  return f;
}

void setUseOptimized(bool enabled) noexcept { g_use_optimized.store(enabled); }
bool useOptimized() noexcept { return g_use_optimized.load(); }

void setPreferredPath(KernelPath path) noexcept { g_preferred.store(path); }

KernelPath preferredPath() noexcept {
  KernelPath p = g_preferred.load();
  return p == KernelPath::Default ? defaultPreferred() : p;
}

bool pathAvailable(KernelPath path) noexcept {
  const CpuFeatures& f = cpuFeatures();
  switch (path) {
    case KernelPath::ScalarNoVec:
    case KernelPath::Auto:
      return true;
    case KernelPath::Sse2:
      return f.sse2;
    case KernelPath::Neon:
      return f.neon || f.neon_emulated;
    case KernelPath::Avx2:
      return f.avx2;
    case KernelPath::Default:
      return true;
  }
  return false;
}

KernelPath resolvePath(KernelPath requested) noexcept {
  KernelPath p = requested;
  if (p == KernelPath::Default) {
    p = useOptimized() ? preferredPath() : KernelPath::Auto;
  }
  if (!pathAvailable(p)) {
    // Degrade AVX2 to the SSE2 HAND arm before giving up on intrinsics.
    p = (p == KernelPath::Avx2 && pathAvailable(KernelPath::Sse2))
            ? KernelPath::Sse2
            : KernelPath::Auto;
  }
  return p;
}

}  // namespace simdcv
