// CPU feature detection and kernel-path selection.
//
// The library ships three implementations of every hot kernel:
//   - ScalarNoVec : plain C++ compiled with the auto-vectorizer disabled
//                   (baseline for the instruction-count ablation),
//   - Auto        : the same plain C++ compiled at -O3 with the compiler's
//                   auto-vectorizer enabled (the paper's "AUTO" arm),
//   - Sse2 / Neon : hand-written intrinsics (the paper's "HAND" arm).
//
// Path selection happens at run time so a single binary can benchmark all
// arms against each other, exactly as OpenCV's cv::setUseOptimized() does.
#pragma once

#include <cstdint>
#include <string>

namespace simdcv {

/// Which implementation of a kernel to run.
enum class KernelPath : std::uint8_t {
  ScalarNoVec,  ///< scalar source, compiler vectorizer disabled
  Auto,         ///< scalar source, compiler auto-vectorization (paper "AUTO")
  Sse2,         ///< hand-written SSE2 intrinsics (paper "HAND", Intel)
  Neon,         ///< hand-written NEON intrinsics (paper "HAND", ARM);
                ///< runs through the emulation layer on non-ARM hosts
  Avx2,         ///< hand-written AVX2 intrinsics (the paper's future-work
                ///< ISA; falls back to Sse2 kernels where no AVX2 version
                ///< exists)
  Default,      ///< resolve via useOptimized() + preferredPath()
};

const char* toString(KernelPath path) noexcept;

/// Static CPU capabilities of the host, detected once via CPUID (x86) or
/// compile-time macros (ARM).
struct CpuFeatures {
  bool sse2 = false;
  bool sse3 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool neon = false;        ///< genuine ARM NEON
  bool neon_emulated = false;  ///< NEON intrinsics available via emulation
  std::string vendor;       ///< CPUID vendor string, e.g. "GenuineIntel"
  std::string brand;        ///< CPUID brand string
  int logical_cpus = 1;
};

/// Detected features of the executing host (computed once, cached).
const CpuFeatures& cpuFeatures() noexcept;

/// Global HAND-optimization switch, mirroring cv::setUseOptimized().
/// When false, Default resolves to Auto.
void setUseOptimized(bool enabled) noexcept;
bool useOptimized() noexcept;

/// Preferred HAND path when optimizations are on. Defaults to the best
/// native path for the host (Sse2 on x86, Neon on ARM).
void setPreferredPath(KernelPath path) noexcept;
KernelPath preferredPath() noexcept;

/// Resolve Default into a concrete runnable path; validates that the
/// requested path is executable on this host (falls back to Auto if not).
KernelPath resolvePath(KernelPath requested) noexcept;

/// True if `path` can execute on this host.
bool pathAvailable(KernelPath path) noexcept;

}  // namespace simdcv
