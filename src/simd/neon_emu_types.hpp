// NEON intrinsics emulation for non-ARM hosts — type layer.
//
// Provides the ARM NEON C vector types (int8x16_t, float32x4_t, ...), the
// multi-vector array types (int16x4x2_t, ...), loads/stores, lane access,
// combine/split, duplication, and the full vreinterpret family.
//
// Implementation notes:
//  * Types are GCC vector extensions (the exact mechanism <arm_neon.h> uses
//    on ARM), so element indexing, +,-,* and comparisons lower to SSE on x86
//    with no per-lane scalar code in the common case.
//  * Functions accept runtime ints where arm_neon.h requires immediates;
//    range is checked with assert in debug builds.
//  * Never include this header directly: use "simd/neon_compat.hpp", which
//    selects the genuine <arm_neon.h> when __ARM_NEON is defined.
#pragma once

#if defined(__ARM_NEON)
#error "neon_emu_types.hpp must not be included on a real NEON target"
#endif

#include <cassert>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define SIMDCV_NEON_EMU_SSE2 1
#endif

// ---- element typedefs (as in arm_neon.h) -----------------------------------
typedef float float32_t;
typedef std::int8_t poly8_t;
typedef std::int16_t poly16_t;

// ---- 64-bit "D" register vector types ---------------------------------------
typedef std::int8_t int8x8_t __attribute__((vector_size(8)));
typedef std::int16_t int16x4_t __attribute__((vector_size(8)));
typedef std::int32_t int32x2_t __attribute__((vector_size(8)));
typedef std::int64_t int64x1_t __attribute__((vector_size(8)));
typedef std::uint8_t uint8x8_t __attribute__((vector_size(8)));
typedef std::uint16_t uint16x4_t __attribute__((vector_size(8)));
typedef std::uint32_t uint32x2_t __attribute__((vector_size(8)));
typedef std::uint64_t uint64x1_t __attribute__((vector_size(8)));
typedef float float32x2_t __attribute__((vector_size(8)));
typedef poly8_t poly8x8_t __attribute__((vector_size(8)));
typedef poly16_t poly16x4_t __attribute__((vector_size(8)));

// ---- 128-bit "Q" register vector types --------------------------------------
typedef std::int8_t int8x16_t __attribute__((vector_size(16)));
typedef std::int16_t int16x8_t __attribute__((vector_size(16)));
typedef std::int32_t int32x4_t __attribute__((vector_size(16)));
typedef std::int64_t int64x2_t __attribute__((vector_size(16)));
typedef std::uint8_t uint8x16_t __attribute__((vector_size(16)));
typedef std::uint16_t uint16x8_t __attribute__((vector_size(16)));
typedef std::uint32_t uint32x4_t __attribute__((vector_size(16)));
typedef std::uint64_t uint64x2_t __attribute__((vector_size(16)));
typedef float float32x4_t __attribute__((vector_size(16)));
typedef poly8_t poly8x16_t __attribute__((vector_size(16)));
typedef poly16_t poly16x8_t __attribute__((vector_size(16)));

// ---- multi-vector (array-of-vector) types -----------------------------------
#define SIMDCV_EMU_ARRAY_TYPES(VT, NAME)        \
  struct NAME##x2_t { VT val[2]; };             \
  struct NAME##x3_t { VT val[3]; };             \
  struct NAME##x4_t { VT val[4]; };

SIMDCV_EMU_ARRAY_TYPES(int8x8_t, int8x8)
SIMDCV_EMU_ARRAY_TYPES(int16x4_t, int16x4)
SIMDCV_EMU_ARRAY_TYPES(int32x2_t, int32x2)
SIMDCV_EMU_ARRAY_TYPES(uint8x8_t, uint8x8)
SIMDCV_EMU_ARRAY_TYPES(uint16x4_t, uint16x4)
SIMDCV_EMU_ARRAY_TYPES(uint32x2_t, uint32x2)
SIMDCV_EMU_ARRAY_TYPES(float32x2_t, float32x2)
SIMDCV_EMU_ARRAY_TYPES(int8x16_t, int8x16)
SIMDCV_EMU_ARRAY_TYPES(int16x8_t, int16x8)
SIMDCV_EMU_ARRAY_TYPES(int32x4_t, int32x4)
SIMDCV_EMU_ARRAY_TYPES(uint8x16_t, uint8x16)
SIMDCV_EMU_ARRAY_TYPES(uint16x8_t, uint16x8)
SIMDCV_EMU_ARRAY_TYPES(uint32x4_t, uint32x4)
SIMDCV_EMU_ARRAY_TYPES(float32x4_t, float32x4)
#undef SIMDCV_EMU_ARRAY_TYPES

namespace simdcv::neon_emu_detail {

template <typename To, typename From>
inline To bitcast(From f) {
  static_assert(sizeof(To) == sizeof(From));
  To t;
  __builtin_memcpy(&t, &f, sizeof(t));
  return t;
}

#if defined(SIMDCV_NEON_EMU_SSE2)
template <typename V> inline __m128i to_m128i(V v) { return bitcast<__m128i>(v); }
inline __m128 to_m128(float32x4_t v) { return bitcast<__m128>(v); }
template <typename V> inline V from_m128i(__m128i v) { return bitcast<V>(v); }
inline float32x4_t from_m128(__m128 v) { return bitcast<float32x4_t>(v); }
#endif

}  // namespace simdcv::neon_emu_detail

// =============================================================================
// Loads and stores: vld1 / vst1 (contiguous, unaligned)
// =============================================================================
#define SIMDCV_EMU_LDST(suffix, VT, ET)                         \
  inline VT vld1_##suffix(const ET* p) {                        \
    VT r;                                                       \
    __builtin_memcpy(&r, p, sizeof(r));                         \
    return r;                                                   \
  }                                                             \
  inline void vst1_##suffix(ET* p, VT v) { __builtin_memcpy(p, &v, sizeof(v)); }

#define SIMDCV_EMU_LDSTQ(suffix, VT, ET)                        \
  inline VT vld1q_##suffix(const ET* p) {                       \
    VT r;                                                       \
    __builtin_memcpy(&r, p, sizeof(r));                         \
    return r;                                                   \
  }                                                             \
  inline void vst1q_##suffix(ET* p, VT v) { __builtin_memcpy(p, &v, sizeof(v)); }

SIMDCV_EMU_LDST(s8, int8x8_t, std::int8_t)
SIMDCV_EMU_LDST(s16, int16x4_t, std::int16_t)
SIMDCV_EMU_LDST(s32, int32x2_t, std::int32_t)
SIMDCV_EMU_LDST(s64, int64x1_t, std::int64_t)
SIMDCV_EMU_LDST(u8, uint8x8_t, std::uint8_t)
SIMDCV_EMU_LDST(u16, uint16x4_t, std::uint16_t)
SIMDCV_EMU_LDST(u32, uint32x2_t, std::uint32_t)
SIMDCV_EMU_LDST(u64, uint64x1_t, std::uint64_t)
SIMDCV_EMU_LDST(f32, float32x2_t, float32_t)
SIMDCV_EMU_LDSTQ(s8, int8x16_t, std::int8_t)
SIMDCV_EMU_LDSTQ(s16, int16x8_t, std::int16_t)
SIMDCV_EMU_LDSTQ(s32, int32x4_t, std::int32_t)
SIMDCV_EMU_LDSTQ(s64, int64x2_t, std::int64_t)
SIMDCV_EMU_LDSTQ(u8, uint8x16_t, std::uint8_t)
SIMDCV_EMU_LDSTQ(u16, uint16x8_t, std::uint16_t)
SIMDCV_EMU_LDSTQ(u32, uint32x4_t, std::uint32_t)
SIMDCV_EMU_LDSTQ(u64, uint64x2_t, std::uint64_t)
SIMDCV_EMU_LDSTQ(f32, float32x4_t, float32_t)
#undef SIMDCV_EMU_LDST
#undef SIMDCV_EMU_LDSTQ

// =============================================================================
// Duplicate scalar to all lanes: vdup_n / vdupq_n / vmov_n / vmovq_n
// =============================================================================
#define SIMDCV_EMU_DUP(suffix, VT, ET, N)                        \
  inline VT vdup_n_##suffix(ET v) {                              \
    VT r;                                                        \
    for (int i = 0; i < (N); ++i) r[i] = v;                      \
    return r;                                                    \
  }                                                              \
  inline VT vmov_n_##suffix(ET v) { return vdup_n_##suffix(v); }

#define SIMDCV_EMU_DUPQ(suffix, VT, ET, N)                       \
  inline VT vdupq_n_##suffix(ET v) {                             \
    VT r;                                                        \
    for (int i = 0; i < (N); ++i) r[i] = v;                      \
    return r;                                                    \
  }                                                              \
  inline VT vmovq_n_##suffix(ET v) { return vdupq_n_##suffix(v); }

SIMDCV_EMU_DUP(s8, int8x8_t, std::int8_t, 8)
SIMDCV_EMU_DUP(s16, int16x4_t, std::int16_t, 4)
SIMDCV_EMU_DUP(s32, int32x2_t, std::int32_t, 2)
SIMDCV_EMU_DUP(s64, int64x1_t, std::int64_t, 1)
SIMDCV_EMU_DUP(u8, uint8x8_t, std::uint8_t, 8)
SIMDCV_EMU_DUP(u16, uint16x4_t, std::uint16_t, 4)
SIMDCV_EMU_DUP(u32, uint32x2_t, std::uint32_t, 2)
SIMDCV_EMU_DUP(u64, uint64x1_t, std::uint64_t, 1)
SIMDCV_EMU_DUP(f32, float32x2_t, float32_t, 2)
SIMDCV_EMU_DUPQ(s8, int8x16_t, std::int8_t, 16)
SIMDCV_EMU_DUPQ(s16, int16x8_t, std::int16_t, 8)
SIMDCV_EMU_DUPQ(s32, int32x4_t, std::int32_t, 4)
SIMDCV_EMU_DUPQ(s64, int64x2_t, std::int64_t, 2)
SIMDCV_EMU_DUPQ(u8, uint8x16_t, std::uint8_t, 16)
SIMDCV_EMU_DUPQ(u16, uint16x8_t, std::uint16_t, 8)
SIMDCV_EMU_DUPQ(u32, uint32x4_t, std::uint32_t, 4)
SIMDCV_EMU_DUPQ(u64, uint64x2_t, std::uint64_t, 2)
SIMDCV_EMU_DUPQ(f32, float32x4_t, float32_t, 4)
#undef SIMDCV_EMU_DUP
#undef SIMDCV_EMU_DUPQ

// =============================================================================
// Lane access: vget_lane / vset_lane (+q)
// =============================================================================
#define SIMDCV_EMU_LANE(suffix, VT, ET, N)                                \
  inline ET vget_lane_##suffix(VT v, int lane) {                          \
    assert(lane >= 0 && lane < (N));                                      \
    return v[lane];                                                       \
  }                                                                       \
  inline VT vset_lane_##suffix(ET x, VT v, int lane) {                    \
    assert(lane >= 0 && lane < (N));                                      \
    v[lane] = x;                                                          \
    return v;                                                             \
  }

#define SIMDCV_EMU_LANEQ(suffix, VT, ET, N)                               \
  inline ET vgetq_lane_##suffix(VT v, int lane) {                         \
    assert(lane >= 0 && lane < (N));                                      \
    return v[lane];                                                       \
  }                                                                       \
  inline VT vsetq_lane_##suffix(ET x, VT v, int lane) {                   \
    assert(lane >= 0 && lane < (N));                                      \
    v[lane] = x;                                                          \
    return v;                                                             \
  }

SIMDCV_EMU_LANE(s8, int8x8_t, std::int8_t, 8)
SIMDCV_EMU_LANE(s16, int16x4_t, std::int16_t, 4)
SIMDCV_EMU_LANE(s32, int32x2_t, std::int32_t, 2)
SIMDCV_EMU_LANE(s64, int64x1_t, std::int64_t, 1)
SIMDCV_EMU_LANE(u8, uint8x8_t, std::uint8_t, 8)
SIMDCV_EMU_LANE(u16, uint16x4_t, std::uint16_t, 4)
SIMDCV_EMU_LANE(u32, uint32x2_t, std::uint32_t, 2)
SIMDCV_EMU_LANE(u64, uint64x1_t, std::uint64_t, 1)
SIMDCV_EMU_LANE(f32, float32x2_t, float32_t, 2)
SIMDCV_EMU_LANEQ(s8, int8x16_t, std::int8_t, 16)
SIMDCV_EMU_LANEQ(s16, int16x8_t, std::int16_t, 8)
SIMDCV_EMU_LANEQ(s32, int32x4_t, std::int32_t, 4)
SIMDCV_EMU_LANEQ(s64, int64x2_t, std::int64_t, 2)
SIMDCV_EMU_LANEQ(u8, uint8x16_t, std::uint8_t, 16)
SIMDCV_EMU_LANEQ(u16, uint16x8_t, std::uint16_t, 8)
SIMDCV_EMU_LANEQ(u32, uint32x4_t, std::uint32_t, 4)
SIMDCV_EMU_LANEQ(u64, uint64x2_t, std::uint64_t, 2)
SIMDCV_EMU_LANEQ(f32, float32x4_t, float32_t, 4)
#undef SIMDCV_EMU_LANE
#undef SIMDCV_EMU_LANEQ

// =============================================================================
// Combine two D vectors into a Q vector; split a Q vector into halves.
// =============================================================================
#define SIMDCV_EMU_COMBINE(suffix, DT, QT, N)                       \
  inline QT vcombine_##suffix(DT lo, DT hi) {                       \
    QT r;                                                           \
    for (int i = 0; i < (N); ++i) {                                 \
      r[i] = lo[i];                                                 \
      r[(N) + i] = hi[i];                                           \
    }                                                               \
    return r;                                                       \
  }                                                                 \
  inline DT vget_low_##suffix(QT v) {                               \
    DT r;                                                           \
    for (int i = 0; i < (N); ++i) r[i] = v[i];                      \
    return r;                                                       \
  }                                                                 \
  inline DT vget_high_##suffix(QT v) {                              \
    DT r;                                                           \
    for (int i = 0; i < (N); ++i) r[i] = v[(N) + i];                \
    return r;                                                       \
  }

SIMDCV_EMU_COMBINE(s8, int8x8_t, int8x16_t, 8)
SIMDCV_EMU_COMBINE(s16, int16x4_t, int16x8_t, 4)
SIMDCV_EMU_COMBINE(s32, int32x2_t, int32x4_t, 2)
SIMDCV_EMU_COMBINE(s64, int64x1_t, int64x2_t, 1)
SIMDCV_EMU_COMBINE(u8, uint8x8_t, uint8x16_t, 8)
SIMDCV_EMU_COMBINE(u16, uint16x4_t, uint16x8_t, 4)
SIMDCV_EMU_COMBINE(u32, uint32x2_t, uint32x4_t, 2)
SIMDCV_EMU_COMBINE(u64, uint64x1_t, uint64x2_t, 1)
SIMDCV_EMU_COMBINE(f32, float32x2_t, float32x4_t, 2)
#undef SIMDCV_EMU_COMBINE

// =============================================================================
// vreinterpret: bit pattern reinterpretation between same-width vectors.
// Generated as the full cross product over the common integer/float types.
// =============================================================================
#define SIMDCV_EMU_REINTERP_ONE(dsuf, DT, ssuf, ST)                      \
  inline DT vreinterpret_##dsuf##_##ssuf(ST v) {                         \
    return simdcv::neon_emu_detail::bitcast<DT>(v);                      \
  }

#define SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, ssuf, ST)                    \
  inline DT vreinterpretq_##dsuf##_##ssuf(ST v) {                        \
    return simdcv::neon_emu_detail::bitcast<DT>(v);                      \
  }

#define SIMDCV_EMU_REINTERP_ROW(dsuf, DT)                 \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, s8, int8x8_t)         \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, s16, int16x4_t)       \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, s32, int32x2_t)       \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, s64, int64x1_t)       \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, u8, uint8x8_t)        \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, u16, uint16x4_t)      \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, u32, uint32x2_t)      \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, u64, uint64x1_t)      \
  SIMDCV_EMU_REINTERP_ONE(dsuf, DT, f32, float32x2_t)

#define SIMDCV_EMU_REINTERP_ROW_Q(dsuf, DT)               \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, s8, int8x16_t)      \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, s16, int16x8_t)     \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, s32, int32x4_t)     \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, s64, int64x2_t)     \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, u8, uint8x16_t)     \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, u16, uint16x8_t)    \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, u32, uint32x4_t)    \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, u64, uint64x2_t)    \
  SIMDCV_EMU_REINTERP_ONE_Q(dsuf, DT, f32, float32x4_t)

SIMDCV_EMU_REINTERP_ROW(s8, int8x8_t)
SIMDCV_EMU_REINTERP_ROW(s16, int16x4_t)
SIMDCV_EMU_REINTERP_ROW(s32, int32x2_t)
SIMDCV_EMU_REINTERP_ROW(s64, int64x1_t)
SIMDCV_EMU_REINTERP_ROW(u8, uint8x8_t)
SIMDCV_EMU_REINTERP_ROW(u16, uint16x4_t)
SIMDCV_EMU_REINTERP_ROW(u32, uint32x2_t)
SIMDCV_EMU_REINTERP_ROW(u64, uint64x1_t)
SIMDCV_EMU_REINTERP_ROW(f32, float32x2_t)
SIMDCV_EMU_REINTERP_ROW_Q(s8, int8x16_t)
SIMDCV_EMU_REINTERP_ROW_Q(s16, int16x8_t)
SIMDCV_EMU_REINTERP_ROW_Q(s32, int32x4_t)
SIMDCV_EMU_REINTERP_ROW_Q(s64, int64x2_t)
SIMDCV_EMU_REINTERP_ROW_Q(u8, uint8x16_t)
SIMDCV_EMU_REINTERP_ROW_Q(u16, uint16x8_t)
SIMDCV_EMU_REINTERP_ROW_Q(u32, uint32x4_t)
SIMDCV_EMU_REINTERP_ROW_Q(u64, uint64x2_t)
SIMDCV_EMU_REINTERP_ROW_Q(f32, float32x4_t)
#undef SIMDCV_EMU_REINTERP_ONE
#undef SIMDCV_EMU_REINTERP_ONE_Q
#undef SIMDCV_EMU_REINTERP_ROW
#undef SIMDCV_EMU_REINTERP_ROW_Q

// Note: the self-reinterpret (e.g. vreinterpretq_f32_f32) is generated too;
// arm_neon.h omits it, but it is harmless and keeps the macro table regular.
