// NEON emulation — compile-time traits and generic lane-wise helpers shared
// by the arithmetic / compare / shift / permute headers.
#pragma once

#include <limits>
#include <type_traits>

#include "simd/neon_emu_types.hpp"

namespace simdcv::neon_emu_detail {

/// Next-wider integer type of the same signedness (for overflow-free
/// saturating arithmetic).
template <typename T> struct Wider;
template <> struct Wider<std::int8_t> { using type = std::int16_t; };
template <> struct Wider<std::uint8_t> { using type = std::uint16_t; };
template <> struct Wider<std::int16_t> { using type = std::int32_t; };
template <> struct Wider<std::uint16_t> { using type = std::uint32_t; };
template <> struct Wider<std::int32_t> { using type = std::int64_t; };
template <> struct Wider<std::uint32_t> { using type = std::uint64_t; };
template <> struct Wider<std::int64_t> { using type = __int128; };
template <> struct Wider<std::uint64_t> { using type = unsigned __int128; };
template <typename T> using Wider_t = typename Wider<T>::type;

/// Per-vector-type traits: element type, lane count, same-shape unsigned and
/// signed vectors (compare results are unsigned in NEON).
template <typename VT> struct VTraits;

#define SIMDCV_EMU_TRAIT(VT, ET, N, UVT, SVT)       \
  template <> struct VTraits<VT> {                  \
    using elem = ET;                                \
    using uvec = UVT;                               \
    using svec = SVT;                               \
    static constexpr int lanes = N;                 \
  };

SIMDCV_EMU_TRAIT(int8x8_t, std::int8_t, 8, uint8x8_t, int8x8_t)
SIMDCV_EMU_TRAIT(int16x4_t, std::int16_t, 4, uint16x4_t, int16x4_t)
SIMDCV_EMU_TRAIT(int32x2_t, std::int32_t, 2, uint32x2_t, int32x2_t)
SIMDCV_EMU_TRAIT(int64x1_t, std::int64_t, 1, uint64x1_t, int64x1_t)
SIMDCV_EMU_TRAIT(uint8x8_t, std::uint8_t, 8, uint8x8_t, int8x8_t)
SIMDCV_EMU_TRAIT(uint16x4_t, std::uint16_t, 4, uint16x4_t, int16x4_t)
SIMDCV_EMU_TRAIT(uint32x2_t, std::uint32_t, 2, uint32x2_t, int32x2_t)
SIMDCV_EMU_TRAIT(uint64x1_t, std::uint64_t, 1, uint64x1_t, int64x1_t)
SIMDCV_EMU_TRAIT(float32x2_t, float, 2, uint32x2_t, int32x2_t)
SIMDCV_EMU_TRAIT(int8x16_t, std::int8_t, 16, uint8x16_t, int8x16_t)
SIMDCV_EMU_TRAIT(int16x8_t, std::int16_t, 8, uint16x8_t, int16x8_t)
SIMDCV_EMU_TRAIT(int32x4_t, std::int32_t, 4, uint32x4_t, int32x4_t)
SIMDCV_EMU_TRAIT(int64x2_t, std::int64_t, 2, uint64x2_t, int64x2_t)
SIMDCV_EMU_TRAIT(uint8x16_t, std::uint8_t, 16, uint8x16_t, int8x16_t)
SIMDCV_EMU_TRAIT(uint16x8_t, std::uint16_t, 8, uint16x8_t, int16x8_t)
SIMDCV_EMU_TRAIT(uint32x4_t, std::uint32_t, 4, uint32x4_t, int32x4_t)
SIMDCV_EMU_TRAIT(uint64x2_t, std::uint64_t, 2, uint64x2_t, int64x2_t)
SIMDCV_EMU_TRAIT(float32x4_t, float, 4, uint32x4_t, int32x4_t)
#undef SIMDCV_EMU_TRAIT

/// Saturate a wide value into T's representable range.
template <typename T, typename W>
inline T sat(W v) {
  constexpr W lo = static_cast<W>(std::numeric_limits<T>::min());
  constexpr W hi = static_cast<W>(std::numeric_limits<T>::max());
  return static_cast<T>(v < lo ? lo : (v > hi ? hi : v));
}

/// Lane-wise unary map.
template <typename VT, typename F>
inline VT map1(VT a, F f) {
  VT r{};
  for (int i = 0; i < VTraits<VT>::lanes; ++i) r[i] = f(a[i]);
  return r;
}

/// Lane-wise binary map.
template <typename VT, typename F>
inline VT map2(VT a, VT b, F f) {
  VT r{};
  for (int i = 0; i < VTraits<VT>::lanes; ++i) r[i] = f(a[i], b[i]);
  return r;
}

/// Lane-wise ternary map (accumulating forms).
template <typename VT, typename F>
inline VT map3(VT a, VT b, VT c, F f) {
  VT r{};
  for (int i = 0; i < VTraits<VT>::lanes; ++i) r[i] = f(a[i], b[i], c[i]);
  return r;
}

/// Lane-wise map with a different destination vector shape (same lane count).
template <typename RT, typename VT, typename F>
inline RT mapTo(VT a, F f) {
  RT r{};
  static_assert(VTraits<RT>::lanes == VTraits<VT>::lanes);
  for (int i = 0; i < VTraits<VT>::lanes; ++i)
    r[i] = f(a[i]);
  return r;
}

/// Comparison: all-ones / all-zeros mask in the unsigned counterpart type.
template <typename VT, typename F>
inline typename VTraits<VT>::uvec cmp(VT a, VT b, F pred) {
  using UV = typename VTraits<VT>::uvec;
  using UE = typename VTraits<UV>::elem;
  UV r{};
  for (int i = 0; i < VTraits<VT>::lanes; ++i)
    r[i] = pred(a[i], b[i]) ? static_cast<UE>(~UE{0}) : UE{0};
  return r;
}

}  // namespace simdcv::neon_emu_detail

// X-macro type lists used to instantiate intrinsic families.
// F(suffix, vector_type, element_type, lanes)
#define SIMDCV_EMU_FOR_INT_D(F)                 \
  F(s8, int8x8_t, std::int8_t, 8)               \
  F(u8, uint8x8_t, std::uint8_t, 8)             \
  F(s16, int16x4_t, std::int16_t, 4)            \
  F(u16, uint16x4_t, std::uint16_t, 4)          \
  F(s32, int32x2_t, std::int32_t, 2)            \
  F(u32, uint32x2_t, std::uint32_t, 2)

#define SIMDCV_EMU_FOR_INT_Q(F)                 \
  F(s8, int8x16_t, std::int8_t, 16)             \
  F(u8, uint8x16_t, std::uint8_t, 16)           \
  F(s16, int16x8_t, std::int16_t, 8)            \
  F(u16, uint16x8_t, std::uint16_t, 8)          \
  F(s32, int32x4_t, std::int32_t, 4)            \
  F(u32, uint32x4_t, std::uint32_t, 4)

#define SIMDCV_EMU_FOR_INT64_D(F)               \
  F(s64, int64x1_t, std::int64_t, 1)            \
  F(u64, uint64x1_t, std::uint64_t, 1)

#define SIMDCV_EMU_FOR_INT64_Q(F)               \
  F(s64, int64x2_t, std::int64_t, 2)            \
  F(u64, uint64x2_t, std::uint64_t, 2)

#define SIMDCV_EMU_FOR_F32_D(F) F(f32, float32x2_t, float, 2)
#define SIMDCV_EMU_FOR_F32_Q(F) F(f32, float32x4_t, float, 4)

// Narrow/widen triples: F(nsuffix, narrow_d, wsuffix, wide_q, narrow_elem,
// wide_elem, narrow_lanes_in_q=wide lanes)
#define SIMDCV_EMU_FOR_NARROW(F)                                              \
  F(s8, int8x8_t, s16, int16x8_t, std::int8_t, std::int16_t, 8)               \
  F(u8, uint8x8_t, u16, uint16x8_t, std::uint8_t, std::uint16_t, 8)           \
  F(s16, int16x4_t, s32, int32x4_t, std::int16_t, std::int32_t, 4)            \
  F(u16, uint16x4_t, u32, uint32x4_t, std::uint16_t, std::uint32_t, 4)        \
  F(s32, int32x2_t, s64, int64x2_t, std::int32_t, std::int64_t, 2)            \
  F(u32, uint32x2_t, u64, uint64x2_t, std::uint32_t, std::uint64_t, 2)
