// NEON intrinsics emulation — additional families: broadcast/lane loads and
// stores, vcreate, saturating negate, saturating doubling multiply-high
// (vqdmulh/vqrdmulh, the fixed-point DSP workhorses), and shift-with-insert
// (vsli/vsri).
#pragma once

#include "simd/neon_emu_traits.hpp"

// ---- vld1_dup / vld1q_dup: load one element and broadcast ----------------------
#define SIMDCV_EMU_LD_DUP(suffix, VT, ET, N)                                  \
  inline VT vld1_dup_##suffix(const ET* p) { return vdup_n_##suffix(*p); }
#define SIMDCV_EMU_LDQ_DUP(suffix, VT, ET, N)                                 \
  inline VT vld1q_dup_##suffix(const ET* p) { return vdupq_n_##suffix(*p); }
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_LD_DUP)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_LD_DUP)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_LDQ_DUP)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_LDQ_DUP)
#undef SIMDCV_EMU_LD_DUP
#undef SIMDCV_EMU_LDQ_DUP

// ---- vld1_lane / vst1_lane: load/store a single lane ----------------------------
#define SIMDCV_EMU_LD_LANE(suffix, VT, ET, N)                                 \
  inline VT vld1_lane_##suffix(const ET* p, VT v, int lane) {                 \
    assert(lane >= 0 && lane < (N));                                          \
    v[lane] = *p;                                                             \
    return v;                                                                 \
  }                                                                           \
  inline void vst1_lane_##suffix(ET* p, VT v, int lane) {                     \
    assert(lane >= 0 && lane < (N));                                          \
    *p = v[lane];                                                             \
  }
#define SIMDCV_EMU_LDQ_LANE(suffix, VT, ET, N)                                \
  inline VT vld1q_lane_##suffix(const ET* p, VT v, int lane) {                \
    assert(lane >= 0 && lane < (N));                                          \
    v[lane] = *p;                                                             \
    return v;                                                                 \
  }                                                                           \
  inline void vst1q_lane_##suffix(ET* p, VT v, int lane) {                    \
    assert(lane >= 0 && lane < (N));                                          \
    *p = v[lane];                                                             \
  }
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_LD_LANE)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_LD_LANE)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_LDQ_LANE)
SIMDCV_EMU_FOR_F32_Q(SIMDCV_EMU_LDQ_LANE)
#undef SIMDCV_EMU_LD_LANE
#undef SIMDCV_EMU_LDQ_LANE

// ---- vcreate: build a D register from a 64-bit literal --------------------------
#define SIMDCV_EMU_CREATE(suffix, VT, ET, N)                                  \
  inline VT vcreate_##suffix(std::uint64_t bits) {                            \
    return simdcv::neon_emu_detail::bitcast<VT>(bits);                        \
  }
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_CREATE)
SIMDCV_EMU_FOR_INT64_D(SIMDCV_EMU_CREATE)
SIMDCV_EMU_FOR_F32_D(SIMDCV_EMU_CREATE)
#undef SIMDCV_EMU_CREATE

// ---- vqneg: saturating negate (INT_MIN -> INT_MAX) ------------------------------
#define SIMDCV_EMU_QNEG(name, suffix, VT, ET)                                 \
  inline VT name##_##suffix(VT a) {                                           \
    using W = simdcv::neon_emu_detail::Wider_t<ET>;                           \
    return simdcv::neon_emu_detail::map1(a, [](ET x) {                        \
      return simdcv::neon_emu_detail::sat<ET>(-static_cast<W>(x));            \
    });                                                                       \
  }
SIMDCV_EMU_QNEG(vqneg, s8, int8x8_t, std::int8_t)
SIMDCV_EMU_QNEG(vqneg, s16, int16x4_t, std::int16_t)
SIMDCV_EMU_QNEG(vqneg, s32, int32x2_t, std::int32_t)
SIMDCV_EMU_QNEG(vqnegq, s8, int8x16_t, std::int8_t)
SIMDCV_EMU_QNEG(vqnegq, s16, int16x8_t, std::int16_t)
SIMDCV_EMU_QNEG(vqnegq, s32, int32x4_t, std::int32_t)
#undef SIMDCV_EMU_QNEG

// ---- vqdmulh / vqrdmulh: saturating doubling multiply returning high half -------
// r = sat( (2*a*b) >> bits ), with optional rounding. Saturation only
// triggers for a == b == INT_MIN.
#define SIMDCV_EMU_QDMULH(name, suffix, VT, ET, BITS, ROUND)                  \
  inline VT name##_##suffix(VT a, VT b) {                                     \
    /* Double-wide type: 2*INT_MIN^2 == 2^(2*BITS-1) overflows the           \
       single-step wider type, so widen twice. */                             \
    using W = simdcv::neon_emu_detail::Wider_t<                               \
        simdcv::neon_emu_detail::Wider_t<ET>>;                                \
    return simdcv::neon_emu_detail::map2(a, b, [](ET x, ET y) {               \
      const W prod = static_cast<W>(2) * static_cast<W>(x) * static_cast<W>(y) + \
                     (ROUND ? (W{1} << ((BITS)-1)) : W{0});                   \
      return simdcv::neon_emu_detail::sat<ET>(prod >> (BITS));                \
    });                                                                       \
  }
SIMDCV_EMU_QDMULH(vqdmulh, s16, int16x4_t, std::int16_t, 16, false)
SIMDCV_EMU_QDMULH(vqdmulh, s32, int32x2_t, std::int32_t, 32, false)
SIMDCV_EMU_QDMULH(vqdmulhq, s16, int16x8_t, std::int16_t, 16, false)
SIMDCV_EMU_QDMULH(vqdmulhq, s32, int32x4_t, std::int32_t, 32, false)
SIMDCV_EMU_QDMULH(vqrdmulh, s16, int16x4_t, std::int16_t, 16, true)
SIMDCV_EMU_QDMULH(vqrdmulh, s32, int32x2_t, std::int32_t, 32, true)
SIMDCV_EMU_QDMULH(vqrdmulhq, s16, int16x8_t, std::int16_t, 16, true)
SIMDCV_EMU_QDMULH(vqrdmulhq, s32, int32x4_t, std::int32_t, 32, true)
#undef SIMDCV_EMU_QDMULH

// ---- saturating doubling widening multiply: vqdmull ------------------------------
inline int32x4_t vqdmull_s16(int16x4_t a, int16x4_t b) {
  int32x4_t r{};
  for (int i = 0; i < 4; ++i) {
    const std::int64_t p = 2ll * a[i] * b[i];
    r[i] = simdcv::neon_emu_detail::sat<std::int32_t>(p);
  }
  return r;
}
inline int64x2_t vqdmull_s32(int32x2_t a, int32x2_t b) {
  int64x2_t r{};
  for (int i = 0; i < 2; ++i) {
    const __int128 p = static_cast<__int128>(2) * a[i] * b[i];
    r[i] = simdcv::neon_emu_detail::sat<std::int64_t>(p);
  }
  return r;
}

// ---- vsli_n / vsri_n: shift and insert -------------------------------------------
// vsli: (a & ~(mask << n)) | (b << n);  vsri: (a & ~(mask >> n)) | (b >> n)
// where mask is all-ones; shifts are on the unsigned bit pattern.
#define SIMDCV_EMU_SLI(name, suffix, VT, ET, N, LEFT)                         \
  inline VT name##_##suffix(VT a, VT b, int n) {                              \
    using U = std::make_unsigned_t<ET>;                                       \
    constexpr int bits = static_cast<int>(8 * sizeof(ET));                    \
    assert(LEFT ? (n >= 0 && n < bits) : (n >= 1 && n <= bits));              \
    VT r{};                                                                   \
    for (int i = 0; i < (N); ++i) {                                           \
      const U ua = static_cast<U>(a[i]);                                      \
      const U ub = static_cast<U>(b[i]);                                      \
      U ins, keep;                                                            \
      if (LEFT) {                                                             \
        ins = static_cast<U>(ub << n);                                        \
        keep = static_cast<U>(~(static_cast<U>(~U{0}) << n));                 \
      } else {                                                                \
        ins = static_cast<U>(n == bits ? U{0} : ub >> n);                     \
        keep = static_cast<U>(n == bits ? ~U{0}                               \
                                        : ~(static_cast<U>(~U{0}) >> n));     \
      }                                                                       \
      r[i] = static_cast<ET>((ua & keep) | ins);                              \
    }                                                                         \
    return r;                                                                 \
  }
#define SIMDCV_EMU_SLI_D(suffix, VT, ET, N) \
  SIMDCV_EMU_SLI(vsli_n, suffix, VT, ET, N, true) \
  SIMDCV_EMU_SLI(vsri_n, suffix, VT, ET, N, false)
#define SIMDCV_EMU_SLI_Q(suffix, VT, ET, N) \
  SIMDCV_EMU_SLI(vsliq_n, suffix, VT, ET, N, true) \
  SIMDCV_EMU_SLI(vsriq_n, suffix, VT, ET, N, false)
SIMDCV_EMU_FOR_INT_D(SIMDCV_EMU_SLI_D)
SIMDCV_EMU_FOR_INT_Q(SIMDCV_EMU_SLI_Q)
#undef SIMDCV_EMU_SLI
#undef SIMDCV_EMU_SLI_D
#undef SIMDCV_EMU_SLI_Q
