// Benchmark harness: high-resolution timing, robust statistics, the paper's
// measurement protocol (5 images per resolution cycled 25 times), and
// plain-text table/CSV output that mirrors the paper's Tables II/III and
// Figures 2-6.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "prof/prof.hpp"
#include "simd/features.hpp"

namespace simdcv::bench {

/// Monotonic nanosecond timer (resolution well under the paper's stated
/// 1e-6 s requirement on any modern clocksource). Reads prof::nowNs(), the
/// same CLOCK_MONOTONIC source trace spans use, so harness totals and span
/// sums are directly comparable (asserted within 1% by tests/prof).
class Timer {
 public:
  void start() { t0_ = prof::nowNs(); }
  /// Seconds since start().
  double stop() const {
    return static_cast<double>(prof::nowNs() - t0_) * 1e-9;
  }

 private:
  std::uint64_t t0_ = 0;
};

/// Summary statistics over repeated runs.
struct Stats {
  double mean = 0;
  double median = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  int runs = 0;
};
Stats summarize(std::vector<double> samples);

/// The paper's four evaluation resolutions.
struct Resolution {
  Size size;
  const char* label;   ///< "640x480"
  const char* mpx;     ///< "0.3mpx"
};
const std::vector<Resolution>& paperResolutions();

/// Measurement protocol configuration. Paper defaults: 5 images x 25 cycles.
struct Protocol {
  int images = 5;
  int cycles = 25;
  /// Scale factor applied from the command line: --paper restores the full
  /// 5x25 protocol, --quick shrinks to 1 cycle. The environment variable
  /// SIMDCV_BENCH_SMOKE=1 overrides both to 2 images x 1 cycle, letting CI
  /// run every bench binary end to end without paying for real timing.
  static Protocol fromArgs(int argc, char** argv);
};

/// Run `fn(imageIndex)` over the protocol (images cycled cycles times,
/// matching the paper's cache-defeating traversal) and return per-run
/// second timings.
std::vector<double> runProtocol(const Protocol& proto,
                                const std::function<void(int)>& fn);

/// Fixed-width ASCII table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void addRow(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with the paper's 3-decimal style; speedups as "4.21x".
std::string fmtSeconds(double s);
std::string fmtSpeedup(double s);

/// Emit a CSV file next to stdout output (for replotting the figures).
void writeCsv(const std::string& path,
              const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

/// Print the standard bench banner: host info and path availability.
void printHostBanner(const std::string& benchName);

/// Prevent the optimizer from discarding a result.
template <typename T>
inline void doNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace simdcv::bench
