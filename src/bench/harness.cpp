#include "bench/harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>

#include "platform/platform.hpp"

namespace simdcv::bench {

Stats summarize(std::vector<double> samples) {
  Stats s;
  if (samples.empty()) return s;
  s.runs = static_cast<int>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

const std::vector<Resolution>& paperResolutions() {
  static const std::vector<Resolution> r = {
      {{640, 480}, "640x480", "0.3mpx"},
      {{1024, 960}, "1024x960", "1mpx"},
      {{2592, 1920}, "2592x1920", "5mpx"},
      {{3264, 2448}, "3264x2448", "8mpx"},
  };
  return r;
}

Protocol Protocol::fromArgs(int argc, char** argv) {
  Protocol p;
  // Default to a fast-but-statistical protocol; --paper restores the full
  // 5x25 traversal, --quick shrinks further for smoke runs.
  p.cycles = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) p.cycles = 25;
    if (std::strcmp(argv[i], "--quick") == 0) p.cycles = 1;
  }
  // CI smoke mode: SIMDCV_BENCH_SMOKE=1 shrinks every protocol to 2 images x
  // 1 cycle so the figure/ablation binaries exercise their full code path
  // without meaningful timing cost. Overrides the flags: CI sets the
  // environment precisely to make whatever is invoked cheap.
  const char* smoke = std::getenv("SIMDCV_BENCH_SMOKE");
  if (smoke != nullptr && std::strcmp(smoke, "1") == 0) {
    p.images = 2;
    p.cycles = 1;
  }
  return p;
}

std::vector<double> runProtocol(const Protocol& proto,
                                const std::function<void(int)>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(proto.images) *
                static_cast<std::size_t>(proto.cycles));
  Timer t;
  for (int c = 0; c < proto.cycles; ++c) {
    for (int i = 0; i < proto.images; ++i) {
      t.start();
      fn(i);
      times.push_back(t.stop());
    }
  }
  return times;
}

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  auto rule = [&] {
    std::fputc('+', stdout);
    for (std::size_t w : width) {
      for (std::size_t i = 0; i < w + 2; ++i) std::fputc('-', stdout);
      std::fputc('+', stdout);
    }
    std::fputc('\n', stdout);
  };
  rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::fputc('|', stdout);
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::fputc('\n', stdout);
    if (r == 0) rule();
  }
  rule();
}

std::string fmtSeconds(double s) {
  char buf[64];
  if (s >= 0.1)
    std::snprintf(buf, sizeof(buf), "%.3f", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  else
    std::snprintf(buf, sizeof(buf), "%.3e", s);
  return buf;
}

std::string fmtSpeedup(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", s);
  return buf;
}

void writeCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto writeRow = [&f](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << row[i];
    }
    f << '\n';
  };
  writeRow(header);
  for (const auto& row : rows) writeRow(row);
  std::printf("(csv written to %s)\n", path.c_str());
}

void printHostBanner(const std::string& benchName) {
  const auto host = platform::queryHost();
  std::printf("== %s ==\n", benchName.c_str());
  std::printf("host: %s (%s), %d logical cpus, L1d %dK / L2 %dK / L3 %dK\n",
              host.brand.empty() ? "unknown" : host.brand.c_str(),
              host.vendor.c_str(), host.logical_cpus, host.l1d_kb, host.l2_kb,
              host.l3_kb);
  std::printf("paths: auto=yes sse2=%s neon=%s%s scalar-novec=yes\n\n",
              pathAvailable(KernelPath::Sse2) ? "yes" : "no",
              pathAvailable(KernelPath::Neon) ? "yes" : "no",
              cpuFeatures().neon ? " (native)" : " (emulated)");
}

}  // namespace simdcv::bench
