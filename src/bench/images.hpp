// Deterministic synthetic test images standing in for the paper's camera
// bitmaps: five scene classes per resolution with distinct spectral content,
// cycled during measurement to defeat cache residency exactly as the paper's
// protocol does.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mat.hpp"

namespace simdcv::bench {

enum class Scene : int {
  Gradient = 0,   ///< smooth diagonal ramp (low frequency)
  Blobs,          ///< sum of Gaussian blobs (mid frequency)
  Checker,        ///< checkerboard + text-like bars (high frequency)
  Noise,          ///< uniform pseudo-random noise (white spectrum)
  Natural,        ///< value-noise octaves, 1/f-ish "natural" statistics
};
inline constexpr int kSceneCount = 5;
const char* toString(Scene s) noexcept;

/// Deterministic U8C1 image of the given scene at the given size.
/// The same (scene, size, seed) always produces identical pixels.
Mat makeScene(Scene scene, Size size, std::uint32_t seed = 0);

/// Deterministic F32C1 image with values spanning [-32768*1.25, 32767*1.25]
/// so the float->short conversion benchmark exercises saturation.
Mat makeFloatScene(Scene scene, Size size, std::uint32_t seed = 0);

/// The paper's working set: one image per scene class (5 images).
std::vector<Mat> makeImageSet(Size size, Depth depth);

/// Small xorshift PRNG used across the harness (deterministic, seedable).
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed ? seed : 0x9e3779b9u) {}
  std::uint32_t next() {
    std::uint32_t x = state_;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return state_ = x;
  }
  /// Uniform in [0, 1).
  double uniform() { return next() * (1.0 / 4294967296.0); }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

 private:
  std::uint32_t state_;
};

}  // namespace simdcv::bench
