// Perf-regression gate: compare a fresh benchmark run against a committed
// baseline JSON (BENCH_fusion.json / BENCH_serve.json) and fail loudly when a
// metric regressed beyond tolerance.
//
// The bench writers emit {"bench": ..., "results": [ {row}, {row}, ... ]}
// where each row mixes identity fields (resolution, path, pipeline, mode,
// workers, requests) with measured metrics (speedup, images_per_sec, *_s,
// *_ms). The gate matches rows by their identity fields and compares only
// the intersection: a smoke run carries a subset of the full protocol's rows
// (fewer sizes, fewer worker counts) and that must gate against the full
// baseline without special cases. Direction is per metric — speedup and
// *_per_sec regress downward, *_s / *_ms regress upward — and a candidate
// exactly at the tolerance boundary passes (the gate uses strict
// inequality), so "15% tolerance" means "worse than 15%".
//
// Failure taxonomy (one enum, distinct process exit codes in gate_compare):
//   Ok              every intersected metric within tolerance
//   Regression      at least one metric beyond tolerance (named in messages)
//   MissingBaseline baseline file absent/unreadable — the gate cannot vouch
//   ParseError      malformed JSON on either side
//   NoOverlap       zero candidate rows matched a baseline row (identity
//                   drift: renamed fields would otherwise pass vacuously)
//   HostMismatch    the files carry different "host" blocks — a perf
//                   baseline recorded on another machine cannot gate this
//                   one (the same policy the tune cache applies via its
//                   fingerprint); re-record the baseline to arm the gate
#pragma once

#include <string>
#include <vector>

namespace simdcv::bench::gate {

enum class Outcome : int {
  Ok = 0,
  Regression = 1,
  MissingBaseline = 2,
  ParseError = 3,
  NoOverlap = 4,
  HostMismatch = 5,
};

const char* toString(Outcome o) noexcept;

/// One benchmark result row, flattened: identity fields as strings (numeric
/// identities like workers are canonicalized through their decimal form),
/// metrics as doubles.
struct Row {
  std::vector<std::pair<std::string, std::string>> ids;  // sorted by key
  std::vector<std::pair<std::string, double>> metrics;   // sorted by key
  std::string idKey() const;  // "k=v|k=v|..." — the row-matching key
};

/// Metric direction: +1 higher-is-better (speedup, *_per_sec), -1
/// lower-is-better (*_s, *_ms), 0 unknown/identity (not compared unless
/// explicitly requested, in which case unknown names are an error).
int metricDirection(const std::string& name) noexcept;

/// Parse the "results" array of a bench JSON into rows. Returns false and
/// sets *error on malformed JSON or a missing/ill-typed results array.
bool parseResults(const std::string& json_text, std::vector<Row>* out,
                  std::string* error);

/// Canonical host identity of a bench JSON ("brand|cpus|l1d|l2|l3" from its
/// "host" object); empty when the file carries none or fails to parse.
std::string parseHost(const std::string& json_text);

struct CompareOptions {
  /// Relative tolerance: a metric fails only when worse than base by MORE
  /// than this factor (0.15 = 15%).
  double tolerance = 0.15;
  /// Metrics to compare; empty = every metric with a known direction that
  /// both rows carry.
  std::vector<std::string> metrics;
  /// Compare even when the two files were recorded on different hosts
  /// (timings are not comparable across machines; default is to refuse).
  bool ignore_host_mismatch = false;
};

struct CompareReport {
  Outcome outcome = Outcome::Ok;
  int rows_matched = 0;      ///< candidate rows with a baseline identity match
  int rows_unmatched = 0;    ///< candidate rows with no baseline counterpart
  int metrics_compared = 0;
  /// Human-readable lines: every regression (naming row, metric, values) and
  /// any parse/structure complaint.
  std::vector<std::string> messages;
};

/// Compare parsed candidate rows against baseline rows.
CompareReport compareRows(const std::vector<Row>& baseline,
                          const std::vector<Row>& candidate,
                          const CompareOptions& opts);

/// File-level driver: reads, parses and compares. A missing/unreadable
/// baseline file maps to MissingBaseline, a missing candidate to ParseError
/// (the candidate is the run the caller just made — its absence is a bug).
CompareReport compareFiles(const std::string& baseline_path,
                           const std::string& candidate_path,
                           const CompareOptions& opts);

}  // namespace simdcv::bench::gate
