#include "bench/gate.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace simdcv::bench::gate {

namespace {

// ---- minimal JSON reader ---------------------------------------------------
// Just enough for the bench files: objects, arrays, strings, numbers,
// true/false/null. No \uXXXX escapes (the writers never emit them).

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> items;                                // Array
  std::vector<std::pair<std::string, Json>> members;      // Object (in order)

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void skipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }

  bool parseString(std::string* out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return fail("unsupported escape");
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parseValue(Json* out) {
    skipWs();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        out->kind = Json::Kind::Object;
        ++p;
        skipWs();
        if (p < end && *p == '}') { ++p; return true; }
        while (true) {
          skipWs();
          std::string key;
          if (!parseString(&key)) return false;
          skipWs();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Json v;
          if (!parseValue(&v)) return false;
          out->members.emplace_back(std::move(key), std::move(v));
          skipWs();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == '}') { ++p; return true; }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out->kind = Json::Kind::Array;
        ++p;
        skipWs();
        if (p < end && *p == ']') { ++p; return true; }
        while (true) {
          Json v;
          if (!parseValue(&v)) return false;
          out->items.push_back(std::move(v));
          skipWs();
          if (p < end && *p == ',') { ++p; continue; }
          if (p < end && *p == ']') { ++p; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind = Json::Kind::String;
        return parseString(&out->str);
      case 't':
        if (end - p >= 4 && std::equal(p, p + 4, "true")) {
          out->kind = Json::Kind::Bool;
          out->b = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::equal(p, p + 5, "false")) {
          out->kind = Json::Kind::Bool;
          out->b = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::equal(p, p + 4, "null")) {
          out->kind = Json::Kind::Null;
          p += 4;
          return true;
        }
        return fail("bad literal");
      default: {
        char* numEnd = nullptr;
        const double v = std::strtod(p, &numEnd);
        if (numEnd == p || numEnd > end) return fail("bad number");
        out->kind = Json::Kind::Number;
        out->num = v;
        p = numEnd;
        return true;
      }
    }
  }
};

bool parseJson(const std::string& text, Json* out, std::string* error) {
  Parser ps{text.data(), text.data() + text.size(), {}};
  if (!ps.parseValue(out)) {
    *error = ps.error;
    return false;
  }
  ps.skipWs();
  if (ps.p != ps.end) {
    *error = "trailing characters after JSON value";
    return false;
  }
  return true;
}

// ---- row extraction --------------------------------------------------------

// Numeric fields that identify a row rather than measure it.
bool isNumericIdentity(const std::string& name) noexcept {
  return name == "workers" || name == "requests";
}

std::string canonicalNumber(double v) {
  // Identity numerics are small integers in practice; print exactly.
  char buf[32];
  if (v == static_cast<long long>(v)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

Row rowFrom(const Json& obj) {
  Row row;
  for (const auto& [key, val] : obj.members) {
    if (val.kind == Json::Kind::String) {
      row.ids.emplace_back(key, val.str);
    } else if (val.kind == Json::Kind::Number) {
      if (isNumericIdentity(key))
        row.ids.emplace_back(key, canonicalNumber(val.num));
      else
        row.metrics.emplace_back(key, val.num);
    }
    // bools/nulls/nested values carry no gate meaning; ignore.
  }
  std::sort(row.ids.begin(), row.ids.end());
  std::sort(row.metrics.begin(), row.metrics.end());
  return row;
}

bool readFile(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

const char* toString(Outcome o) noexcept {
  switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::Regression: return "regression";
    case Outcome::MissingBaseline: return "missing-baseline";
    case Outcome::ParseError: return "parse-error";
    case Outcome::NoOverlap: return "no-overlap";
    case Outcome::HostMismatch: return "host-mismatch";
  }
  return "?";
}

std::string parseHost(const std::string& json_text) {
  Json root;
  std::string error;
  if (!parseJson(json_text, &root, &error) || root.kind != Json::Kind::Object)
    return {};
  const Json* host = root.find("host");
  if (host == nullptr || host->kind != Json::Kind::Object) return {};
  std::string out;
  for (const char* key :
       {"brand", "logical_cpus", "l1d_kb", "l2_kb", "l3_kb"}) {
    const Json* v = host->find(key);
    if (!out.empty()) out += '|';
    if (v == nullptr) continue;
    out += v->kind == Json::Kind::String ? v->str : canonicalNumber(v->num);
  }
  return out;
}

std::string Row::idKey() const {
  std::string key;
  for (const auto& [k, v] : ids) {
    if (!key.empty()) key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

int metricDirection(const std::string& name) noexcept {
  if (name == "speedup" || endsWith(name, "_per_sec")) return +1;
  if (endsWith(name, "_s") || endsWith(name, "_ms")) return -1;
  return 0;  // counts (completed/rejected/expired), unknowns: not gated
}

bool parseResults(const std::string& json_text, std::vector<Row>* out,
                  std::string* error) {
  Json root;
  if (!parseJson(json_text, &root, error)) return false;
  if (root.kind != Json::Kind::Object) {
    *error = "top-level JSON value is not an object";
    return false;
  }
  const Json* results = root.find("results");
  if (results == nullptr || results->kind != Json::Kind::Array) {
    *error = "no \"results\" array";
    return false;
  }
  out->clear();
  for (const Json& item : results->items) {
    if (item.kind != Json::Kind::Object) {
      *error = "non-object row in results";
      return false;
    }
    out->push_back(rowFrom(item));
  }
  return true;
}

CompareReport compareRows(const std::vector<Row>& baseline,
                          const std::vector<Row>& candidate,
                          const CompareOptions& opts) {
  CompareReport rep;
  std::map<std::string, const Row*> baseByKey;
  for (const Row& r : baseline) baseByKey[r.idKey()] = &r;

  for (const Row& cand : candidate) {
    const auto it = baseByKey.find(cand.idKey());
    if (it == baseByKey.end()) {
      ++rep.rows_unmatched;
      continue;
    }
    ++rep.rows_matched;
    const Row& base = *it->second;
    for (const auto& [metric, candVal] : cand.metrics) {
      const bool requested =
          opts.metrics.empty()
              ? true
              : std::find(opts.metrics.begin(), opts.metrics.end(), metric) !=
                    opts.metrics.end();
      if (!requested) continue;
      const int dir = metricDirection(metric);
      if (dir == 0) {
        if (!opts.metrics.empty()) {
          rep.messages.push_back("unknown direction for requested metric \"" +
                                 metric + "\"; skipped");
        }
        continue;
      }
      const auto bit = std::find_if(
          base.metrics.begin(), base.metrics.end(),
          [&](const auto& kv) { return kv.first == metric; });
      if (bit == base.metrics.end()) continue;  // intersection only
      const double baseVal = bit->second;
      if (baseVal <= 0.0) continue;  // degenerate baseline: nothing to gate
      ++rep.metrics_compared;
      // Strict inequality: exactly at tolerance passes.
      const bool regressed = dir > 0
                                 ? candVal * (1.0 + opts.tolerance) < baseVal
                                 : candVal > baseVal * (1.0 + opts.tolerance);
      if (regressed) {
        char buf[128];
        const double ratio = dir > 0 ? baseVal / candVal : candVal / baseVal;
        std::snprintf(buf, sizeof(buf), "%s: %.4g -> %.4g (%.2fx worse, tol %.0f%%)",
                      metric.c_str(), baseVal, candVal, ratio,
                      opts.tolerance * 100.0);
        rep.messages.push_back("REGRESSION [" + cand.idKey() + "] " + buf);
        rep.outcome = Outcome::Regression;
      }
    }
  }
  if (rep.rows_matched == 0 && rep.outcome == Outcome::Ok) {
    rep.outcome = Outcome::NoOverlap;
    rep.messages.push_back(
        "no candidate row matched any baseline row (identity drift?)");
  }
  return rep;
}

CompareReport compareFiles(const std::string& baseline_path,
                           const std::string& candidate_path,
                           const CompareOptions& opts) {
  CompareReport rep;
  std::string baseText, candText, error;
  if (!readFile(baseline_path, &baseText)) {
    rep.outcome = Outcome::MissingBaseline;
    rep.messages.push_back("baseline not readable: " + baseline_path);
    return rep;
  }
  if (!readFile(candidate_path, &candText)) {
    rep.outcome = Outcome::ParseError;
    rep.messages.push_back("candidate not readable: " + candidate_path);
    return rep;
  }
  std::vector<Row> base, cand;
  if (!parseResults(baseText, &base, &error)) {
    rep.outcome = Outcome::ParseError;
    rep.messages.push_back("baseline " + baseline_path + ": " + error);
    return rep;
  }
  if (!parseResults(candText, &cand, &error)) {
    rep.outcome = Outcome::ParseError;
    rep.messages.push_back("candidate " + candidate_path + ": " + error);
    return rep;
  }
  const std::string baseHost = parseHost(baseText);
  const std::string candHost = parseHost(candText);
  if (!opts.ignore_host_mismatch && !baseHost.empty() && !candHost.empty() &&
      baseHost != candHost) {
    rep.outcome = Outcome::HostMismatch;
    rep.messages.push_back("baseline host [" + baseHost +
                           "] != candidate host [" + candHost +
                           "]; timings are not comparable across machines — "
                           "re-record the baseline on this host");
    return rep;
  }
  return compareRows(base, cand, opts);
}

}  // namespace simdcv::bench::gate
