#include "bench/images.hpp"

#include <cmath>

#include "core/saturate.hpp"

namespace simdcv::bench {

const char* toString(Scene s) noexcept {
  switch (s) {
    case Scene::Gradient: return "gradient";
    case Scene::Blobs: return "blobs";
    case Scene::Checker: return "checker";
    case Scene::Noise: return "noise";
    case Scene::Natural: return "natural";
  }
  return "?";
}

namespace {

// Smooth value noise: bilinear interpolation of a coarse random lattice.
// Summed over octaves this gives roughly 1/f ("natural image") statistics.
class ValueNoise {
 public:
  ValueNoise(std::uint32_t seed, int cell) : cell_(cell), seed_(seed) {}

  double at(int x, int y) const {
    const int gx = x / cell_, gy = y / cell_;
    const double fx = static_cast<double>(x % cell_) / cell_;
    const double fy = static_cast<double>(y % cell_) / cell_;
    const double v00 = lattice(gx, gy), v10 = lattice(gx + 1, gy);
    const double v01 = lattice(gx, gy + 1), v11 = lattice(gx + 1, gy + 1);
    const double sx = fx * fx * (3 - 2 * fx);  // smoothstep
    const double sy = fy * fy * (3 - 2 * fy);
    const double a = v00 + (v10 - v00) * sx;
    const double b = v01 + (v11 - v01) * sx;
    return a + (b - a) * sy;
  }

 private:
  double lattice(int gx, int gy) const {
    std::uint32_t h = seed_;
    h ^= static_cast<std::uint32_t>(gx) * 0x85ebca6bu;
    h ^= static_cast<std::uint32_t>(gy) * 0xc2b2ae35u;
    h ^= h >> 16;
    h *= 0x7feb352du;
    h ^= h >> 15;
    return h * (1.0 / 4294967296.0);
  }
  int cell_;
  std::uint32_t seed_;
};

// Scene intensity in [0,1] at pixel (x,y).
double sceneValue(Scene scene, int x, int y, Size size, std::uint32_t seed,
                  Rng& rng) {
  switch (scene) {
    case Scene::Gradient:
      return (static_cast<double>(x) / size.width +
              static_cast<double>(y) / size.height) *
             0.5;
    case Scene::Blobs: {
      // Three fixed Gaussian blobs whose centers depend on the seed.
      static constexpr double amp[3] = {0.9, 0.7, 0.5};
      double v = 0.05;
      for (int b = 0; b < 3; ++b) {
        const double cx = ((seed >> (4 * b)) % 7 + 1) / 8.0 * size.width;
        const double cy = ((seed >> (4 * b + 2)) % 7 + 1) / 8.0 * size.height;
        const double s = size.width / (6.0 + b * 2);
        const double dx = x - cx, dy = y - cy;
        v += amp[b] * std::exp(-(dx * dx + dy * dy) / (2 * s * s));
      }
      return v > 1.0 ? 1.0 : v;
    }
    case Scene::Checker: {
      const int c = 8 + static_cast<int>(seed % 9);
      const bool sq = ((x / c) + (y / c)) & 1;
      const bool bar = (x / (c / 2 + 1)) & 1;
      return sq ? (bar ? 0.95 : 0.75) : (bar ? 0.25 : 0.05);
    }
    case Scene::Noise:
      return rng.uniform();
    case Scene::Natural: {
      const ValueNoise o1(seed + 1, 64), o2(seed + 2, 16), o3(seed + 3, 4);
      return 0.55 * o1.at(x, y) + 0.3 * o2.at(x, y) + 0.15 * o3.at(x, y);
    }
  }
  return 0;
}

}  // namespace

Mat makeScene(Scene scene, Size size, std::uint32_t seed) {
  Mat img(size, U8C1);
  Rng rng(seed * 2654435761u + static_cast<std::uint32_t>(scene) + 1);
  for (int y = 0; y < size.height; ++y) {
    std::uint8_t* row = img.ptr<std::uint8_t>(y);
    for (int x = 0; x < size.width; ++x) {
      row[x] = saturate_cast<std::uint8_t>(
          sceneValue(scene, x, y, size, seed, rng) * 255.0);
    }
  }
  return img;
}

Mat makeFloatScene(Scene scene, Size size, std::uint32_t seed) {
  Mat img(size, F32C1);
  Rng rng(seed * 2654435761u + static_cast<std::uint32_t>(scene) + 17);
  // Span beyond the int16 range so saturation paths are exercised: values in
  // [-40960, 40959].
  const double scale = 81920.0;
  for (int y = 0; y < size.height; ++y) {
    float* row = img.ptr<float>(y);
    for (int x = 0; x < size.width; ++x) {
      const double v = sceneValue(scene, x, y, size, seed, rng);
      row[x] = static_cast<float>((v - 0.5) * scale);
    }
  }
  return img;
}

std::vector<Mat> makeImageSet(Size size, Depth depth) {
  SIMDCV_REQUIRE(depth == Depth::U8 || depth == Depth::F32,
                 "makeImageSet: u8 or f32 only");
  std::vector<Mat> set;
  set.reserve(kSceneCount);
  for (int s = 0; s < kSceneCount; ++s) {
    set.push_back(depth == Depth::U8
                      ? makeScene(static_cast<Scene>(s), size,
                                  static_cast<std::uint32_t>(s) + 1)
                      : makeFloatScene(static_cast<Scene>(s), size,
                                       static_cast<std::uint32_t>(s) + 1));
  }
  return set;
}

}  // namespace simdcv::bench
