// simdcv — single public entry point.
//
// #include "simdcv.hpp" (installed as <simdcv/simdcv.hpp>) pulls in the whole
// public API surface; applications, examples and the bench binaries compile
// against this header alone. The public/internal split:
//
//   public   every header included below — stable signatures, documented in
//            README.md, uniform trailing `KernelPath path = Default`
//   internal *_detail.hpp, *_scalar.inl, simd/neon_emu*, prof/export_internal
//            — shared between pipelines and tests, may change without notice
//
// Subsystem map (one header per line, same order as the build):
#pragma once

// simd: CPU feature detection, KernelPath selection (Auto/Sse2/Neon/Avx2/
// ScalarNoVec), setUseOptimized / setPreferredPath switches.
#include "simd/features.hpp"

// core: Mat container + types, saturating casts, element-wise array ops,
// depth conversions, bump-allocator scratch frames.
#include "core/types.hpp"
#include "core/mat.hpp"
#include "core/saturate.hpp"
#include "core/array_ops.hpp"
#include "core/convert.hpp"
#include "core/scratch.hpp"

// runtime: band-parallel parallel_for over a work-stealing pool, with the
// bit-identical 1-vs-N thread guarantee.
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

// imgproc: the paper's kernel set (filters, threshold, edge pipeline) plus
// the supporting image operations grown around it.
#include "imgproc/border.hpp"
#include "imgproc/kernels.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/threshold.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/canny.hpp"
#include "imgproc/color.hpp"
#include "imgproc/resize.hpp"
#include "imgproc/pyramid.hpp"
#include "imgproc/morphology.hpp"
#include "imgproc/median.hpp"
#include "imgproc/adaptive.hpp"
#include "imgproc/histogram.hpp"
#include "imgproc/geometry.hpp"
#include "imgproc/moments.hpp"
#include "imgproc/match.hpp"
#include "imgproc/harris.hpp"
#include "imgproc/fast.hpp"
#include "imgproc/connected.hpp"
#include "imgproc/distance.hpp"
#include "imgproc/iir.hpp"

// graph: the pipeline-graph fusion engine — declare a DAG of stages once,
// execute it staged (whole-image kernels) or fused (cache-blocked single-pass
// ring-buffer streaming) with bit-identical results.
#include "graph/graph.hpp"

// io: BMP/PNM image read/write.
#include "io/image_io.hpp"

// platform: host introspection (caches, ISA), the kernel cost catalog, and
// hardened environment-variable parsing.
#include "platform/platform.hpp"
#include "platform/env.hpp"

// tune: measurement-driven dispatch — first calls at a decision point run a
// short timed trial, the winner is cached (optionally on disk, keyed by a
// host fingerprint) and served to every later call. Opt-in via SIMDCV_TUNE=1.
#include "tune/tune.hpp"

// serve: the batched image-service engine — bounded MPMC ingress queue,
// request workers with deadlines and drain/abort shutdown, and the
// pipeline-template registry (edge / blur / threshold / scanner presets).
#include "serve/queue.hpp"
#include "serve/serve.hpp"

// prof: tracing spans, per-kernel metrics, chrome-trace export, optional
// perf_event hardware counters.
#include "prof/prof.hpp"
#include "prof/perf_counters.hpp"

// bench: measurement harness + synthetic scene generator (the paper's
// protocol; also the quickest way to get test images).
#include "bench/harness.hpp"
#include "bench/images.hpp"

// check: differential kernel-path checker (oracle vs kernel comparisons).
#include "check/check.hpp"
