// Figure 2 reproduction: Convert Float to Short relative speedup factor,
// all platforms and image sizes.
#include "fig_speedup_common.hpp"

int main(int argc, char** argv) {
  return simdcv::bench::runSpeedupFigure(
      "Figure 2: Convert Float to Short relative speed-up", "fig2_cvt_speedup",
      simdcv::platform::BenchKernel::ConvertF32S16, argc, argv);
}
