// google-benchmark micro suite: every flat-range kernel x path x size, for
// fine-grained regression tracking (complement to the paper-protocol
// binaries).
#include <benchmark/benchmark.h>

#include <vector>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

KernelPath pathArg(const benchmark::State& state) {
  return static_cast<KernelPath>(state.range(1));
}

void setPathLabel(benchmark::State& state) {
  state.SetLabel(toString(static_cast<KernelPath>(state.range(1))));
}

void BM_Cvt32F16S(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> src(n);
  bench::Rng rng(1);
  for (auto& v : src) v = static_cast<float>(rng.uniform(-40000, 40000));
  std::vector<std::int16_t> dst(n);
  const KernelPath p = pathArg(state);
  if (!pathAvailable(p)) {
    state.SkipWithError("path unavailable");
    return;
  }
  for (auto _ : state) {
    core::cvt32f16s(src.data(), dst.data(), n, p);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  setPathLabel(state);
}

void BM_ThresholdU8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(n), dst(n);
  bench::Rng rng(2);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng.next() & 0xff);
  const KernelPath p = pathArg(state);
  for (auto _ : state) {
    switch (p) {
      case KernelPath::Sse2:
        imgproc::sse2::threshU8(src.data(), dst.data(), n, 128, 255,
                                imgproc::ThresholdType::Binary);
        break;
      case KernelPath::Neon:
        imgproc::neon::threshU8(src.data(), dst.data(), n, 128, 255,
                                imgproc::ThresholdType::Binary);
        break;
      case KernelPath::ScalarNoVec:
        imgproc::novec::threshU8(src.data(), dst.data(), n, 128, 255,
                                 imgproc::ThresholdType::Binary);
        break;
      default:
        imgproc::autovec::threshU8(src.data(), dst.data(), n, 128, 255,
                                   imgproc::ThresholdType::Binary);
        break;
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  setPathLabel(state);
}

void BM_RowConv(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int ksize = 7;
  std::vector<float> padded(static_cast<std::size_t>(width + ksize - 1));
  std::vector<float> out(static_cast<std::size_t>(width));
  std::vector<float> k(ksize, 1.0f / ksize);
  bench::Rng rng(3);
  for (auto& v : padded) v = static_cast<float>(rng.uniform(-1, 1));
  const auto fn = imgproc::detail::rowConvFor(pathArg(state));
  for (auto _ : state) {
    fn(padded.data(), out.data(), width, k.data(), ksize);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * width);
  setPathLabel(state);
}

void BM_ColConv(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int ksize = 7;
  std::vector<std::vector<float>> rows(
      ksize, std::vector<float>(static_cast<std::size_t>(width)));
  std::vector<const float*> taps;
  bench::Rng rng(4);
  for (auto& row : rows) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(-1, 1));
    taps.push_back(row.data());
  }
  std::vector<float> out(static_cast<std::size_t>(width));
  std::vector<float> k(ksize, 1.0f / ksize);
  const auto fn = imgproc::detail::colConvFor(pathArg(state));
  for (auto _ : state) {
    fn(taps.data(), out.data(), width, k.data(), ksize);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * width);
  setPathLabel(state);
}

void BM_MagnitudeS16(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int16_t> gx(n), gy(n);
  std::vector<std::uint8_t> dst(n);
  bench::Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    gx[i] = static_cast<std::int16_t>(rng.next());
    gy[i] = static_cast<std::int16_t>(rng.next());
  }
  const KernelPath p = pathArg(state);
  for (auto _ : state) {
    switch (p) {
      case KernelPath::Sse2:
        imgproc::sse2::magnitudeS16(gx.data(), gy.data(), dst.data(), n);
        break;
      case KernelPath::Neon:
        imgproc::neon::magnitudeS16(gx.data(), gy.data(), dst.data(), n);
        break;
      case KernelPath::ScalarNoVec:
        imgproc::novec::magnitudeS16(gx.data(), gy.data(), dst.data(), n);
        break;
      default:
        imgproc::autovec::magnitudeS16(gx.data(), gy.data(), dst.data(), n);
        break;
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  setPathLabel(state);
}

void BM_GaussianBlurFull(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Mat src = bench::makeScene(bench::Scene::Natural, {side, side}, 1);
  Mat dst;
  const KernelPath p = pathArg(state);
  for (auto _ : state) {
    imgproc::GaussianBlur(src, dst, {7, 7}, 1.0, 1.0,
                          imgproc::BorderType::Reflect101, p);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          side * side);
  setPathLabel(state);
}

void BM_Bgr2Gray(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> bgr(3 * n), gray(n);
  bench::Rng rng(6);
  for (auto& v : bgr) v = static_cast<std::uint8_t>(rng.next());
  const KernelPath p = pathArg(state);
  for (auto _ : state) {
    switch (p) {
      case KernelPath::Avx2:
      case KernelPath::Sse2:
        imgproc::sse2::bgr2grayU8(bgr.data(), gray.data(), n, false);
        break;
      case KernelPath::Neon:
        imgproc::neon::bgr2grayU8(bgr.data(), gray.data(), n, false);
        break;
      case KernelPath::ScalarNoVec:
        imgproc::novec::bgr2grayU8(bgr.data(), gray.data(), n, false);
        break;
      default:
        imgproc::autovec::bgr2grayU8(bgr.data(), gray.data(), n, false);
        break;
    }
    benchmark::DoNotOptimize(gray.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  setPathLabel(state);
}

void BM_Sad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> a(n), b(n);
  bench::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint8_t>(rng.next());
    b[i] = static_cast<std::uint8_t>(rng.next());
  }
  const KernelPath p = pathArg(state);
  for (auto _ : state) {
    std::uint64_t s;
    switch (p) {
      case KernelPath::Avx2:
      case KernelPath::Sse2: s = imgproc::sse2::sadRange(a.data(), b.data(), n); break;
      case KernelPath::Neon: s = imgproc::neon::sadRange(a.data(), b.data(), n); break;
      case KernelPath::ScalarNoVec:
        s = imgproc::novec::sadRange(a.data(), b.data(), n);
        break;
      default: s = imgproc::autovec::sadRange(a.data(), b.data(), n); break;
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  setPathLabel(state);
}

std::vector<std::int64_t> pathRange() {
  return {static_cast<std::int64_t>(KernelPath::ScalarNoVec),
          static_cast<std::int64_t>(KernelPath::Auto),
          static_cast<std::int64_t>(KernelPath::Sse2),
          static_cast<std::int64_t>(KernelPath::Avx2),
          static_cast<std::int64_t>(KernelPath::Neon)};
}

}  // namespace

BENCHMARK(BM_Cvt32F16S)->ArgsProduct({{4096, 1 << 20}, pathRange()});
BENCHMARK(BM_ThresholdU8)->ArgsProduct({{4096, 1 << 20}, pathRange()});
BENCHMARK(BM_RowConv)->ArgsProduct({{640, 3264}, pathRange()});
BENCHMARK(BM_ColConv)->ArgsProduct({{640, 3264}, pathRange()});
BENCHMARK(BM_MagnitudeS16)->ArgsProduct({{1 << 20}, pathRange()});
BENCHMARK(BM_GaussianBlurFull)->ArgsProduct({{640}, pathRange()});
BENCHMARK(BM_Bgr2Gray)->ArgsProduct({{1 << 18}, pathRange()});
BENCHMARK(BM_Sad)->ArgsProduct({{1 << 18}, pathRange()});

BENCHMARK_MAIN();
