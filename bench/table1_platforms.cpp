// Table I reproduction: the ten evaluation platforms and their
// characteristics, plus live detection of the executing host.
#include <cstdio>

#include "simdcv.hpp"

using namespace simdcv;

int main() {
  bench::printHostBanner("Table I: Platforms Used in Benchmarks");

  bench::Table t({"Processor", "Codename", "Launched", "Thr/Cores/GHz",
                  "Cache L1/L2/L3 (KB)", "Memory", "SIMD Ext"});
  for (const auto& p : platform::platformCatalog()) {
    char cfg[64], cache[64];
    std::snprintf(cfg, sizeof(cfg), "%d/%d/%.2f", p.threads, p.cores, p.ghz);
    std::snprintf(cache, sizeof(cache), "%d/%d/%s", p.l1_kb, p.l2_kb,
                  p.l3_kb ? std::to_string(p.l3_kb).c_str() : "No L3");
    t.addRow({p.name, p.codename, p.launched, cfg, cache, p.memory, p.simd_ext});
  }
  t.print();

  std::printf("\nmodel parameters (calibrated; see src/platform/catalog.cpp):\n");
  bench::Table m({"Processor", "Order", "scalar IPC", "SIMD IPC", "BW GB/s",
                  "autovec-eff cvt/thr/gau/sob/edg"});
  for (const auto& p : platform::platformCatalog()) {
    char ipc1[16], ipc2[16], bw[16], eff[64];
    std::snprintf(ipc1, sizeof(ipc1), "%.2f", p.scalar_ipc);
    std::snprintf(ipc2, sizeof(ipc2), "%.2f", p.simd_ipc);
    std::snprintf(bw, sizeof(bw), "%.1f", p.mem_bw_gbs);
    std::snprintf(eff, sizeof(eff), "%.2f/%.2f/%.2f/%.2f/%.2f",
                  p.autovec_eff[0], p.autovec_eff[1], p.autovec_eff[2],
                  p.autovec_eff[3], p.autovec_eff[4]);
    m.addRow({p.name, p.in_order ? "in-order" : "OoO", ipc1, ipc2, bw, eff});
  }
  m.print();
  return 0;
}
