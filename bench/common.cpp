#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "simdcv.hpp"

namespace simdcv::bench {

namespace {

// SIMDCV_BENCH_VERBOSE=2: trace every span inside the timed window and dump
// the per-kernel x per-path summary after it. Forces tracing on for the
// window (compiled-in builds only) and isolates each measurement's stats
// with a reset.
bool beginTraceWindow() {
  if (benchVerboseLevel() < 2 || !prof::kCompiledIn) return false;
  prof::setEnabled(true);
  prof::reset();
  return true;
}

void endTraceWindow(bool armed, const char* what) {
  if (!armed) return;
  const prof::Snapshot snap = prof::snapshot();
  std::printf("  [prof] span summary for %s:\n", what);
  prof::writeSummary(std::cout, snap);
  std::cout.flush();
}

using platform::BenchKernel;

// Build the per-iteration closure for a kernel. Destination Mats are
// preallocated outside the timed region (as OpenCV reuses buffers); the
// timed work is exactly the kernel, as in the paper.
std::function<void(int)> makeRunner(BenchKernel kernel, KernelPath path,
                                    const std::vector<Mat>& images,
                                    std::vector<Mat>& dsts,
                                    std::vector<Mat>& dsts2) {
  switch (kernel) {
    case BenchKernel::ConvertF32S16:
      return [&, path](int i) {
        const Mat& src = images[static_cast<std::size_t>(i)];
        core::convertTo(src, dsts[static_cast<std::size_t>(i)], Depth::S16,
                        1.0, 0.0, path);
      };
    case BenchKernel::ThresholdU8:
      return [&, path](int i) {
        imgproc::threshold(images[static_cast<std::size_t>(i)],
                           dsts[static_cast<std::size_t>(i)], 128.0, 255.0,
                           imgproc::ThresholdType::Binary, path);
      };
    case BenchKernel::GaussianBlur:
      return [&, path](int i) {
        imgproc::GaussianBlur(images[static_cast<std::size_t>(i)],
                              dsts[static_cast<std::size_t>(i)], {7, 7}, 1.0,
                              1.0, imgproc::BorderType::Reflect101, path);
      };
    case BenchKernel::Sobel:
      return [&, path](int i) {
        imgproc::Sobel(images[static_cast<std::size_t>(i)],
                       dsts2[static_cast<std::size_t>(i)], Depth::S16, 1, 0, 3,
                       1.0, imgproc::BorderType::Reflect101, path);
      };
    case BenchKernel::EdgeDetect:
      return [&, path](int i) {
        imgproc::edgeDetect(images[static_cast<std::size_t>(i)],
                            dsts[static_cast<std::size_t>(i)], 100.0, 3,
                            imgproc::BorderType::Reflect101, path);
      };
  }
  return {};
}

}  // namespace

Measurement measureKernel(platform::BenchKernel kernel, KernelPath path,
                          Size size, const Protocol& proto) {
  const Depth srcDepth =
      kernel == platform::BenchKernel::ConvertF32S16 ? Depth::F32 : Depth::U8;
  const auto images = makeImageSet(size, srcDepth);
  std::vector<Mat> dsts(images.size());
  std::vector<Mat> dsts2(images.size());
  auto fn = makeRunner(kernel, path, images, dsts, dsts2);
  // Guard the timed window against one-time costs. When the runtime is
  // configured for >1 thread the first parallel call spins up the pool
  // (thread creation + stack first-touch); force that here, then run one
  // untimed warm-up pass per image (page faults, allocation) so the
  // protocol's mean only measures steady-state kernel time.
  runtime::warmupPool();
  for (std::size_t i = 0; i < images.size(); ++i) fn(static_cast<int>(i));
  const runtime::PoolStats before = runtime::poolStats();
  const bool traced = beginTraceWindow();
  Measurement m;
  m.stats = summarize(runProtocol(proto, fn));
  m.path = path;
  m.kernel = kernel;
  m.size = size;
  endTraceWindow(traced, platform::toString(kernel));
  if (benchVerboseLevel() >= 1) {
    const runtime::PoolStats after = runtime::poolStats();
    std::printf(
        "  [runtime] threads=%d tasks=%llu steals=%llu parks=%llu "
        "unparks=%llu (%s %dx%d %s)\n",
        runtime::getNumThreads(),
        static_cast<unsigned long long>(after.tasks_executed - before.tasks_executed),
        static_cast<unsigned long long>(after.steals - before.steals),
        static_cast<unsigned long long>(after.parks - before.parks),
        static_cast<unsigned long long>(after.unparks - before.unparks),
        platform::toString(kernel), size.width, size.height,
        pathLabel(path).c_str());
  }
  return m;
}

Measurement measureEdgeVariant(bool fused, KernelPath path, Size size,
                               const Protocol& proto) {
  const auto images = makeImageSet(size, Depth::U8);
  std::vector<Mat> dsts(images.size());
  auto fn = [&, path, fused](int i) {
    const auto idx = static_cast<std::size_t>(i);
    if (fused)
      imgproc::edgeDetectFused(images[idx], dsts[idx], 100.0, 3,
                               imgproc::BorderType::Reflect101, path);
    else
      imgproc::edgeDetectUnfused(images[idx], dsts[idx], 100.0, 3,
                                 imgproc::BorderType::Reflect101, path);
  };
  runtime::warmupPool();
  for (std::size_t i = 0; i < images.size(); ++i) fn(static_cast<int>(i));
  const bool traced = beginTraceWindow();
  Measurement m;
  m.stats = summarize(runProtocol(proto, fn));
  m.path = path;
  m.kernel = platform::BenchKernel::EdgeDetect;
  m.size = size;
  endTraceWindow(traced, fused ? "edgeDetectFused" : "edgeDetectUnfused");
  return m;
}

int benchVerboseLevel() {
  const char* v = std::getenv("SIMDCV_BENCH_VERBOSE");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) return 0;
  return static_cast<int>(n);
}

std::vector<KernelPath> benchPaths() {
  std::vector<KernelPath> out = {KernelPath::ScalarNoVec, KernelPath::Auto};
  if (pathAvailable(KernelPath::Sse2)) out.push_back(KernelPath::Sse2);
  if (pathAvailable(KernelPath::Avx2)) out.push_back(KernelPath::Avx2);
  if (pathAvailable(KernelPath::Neon)) out.push_back(KernelPath::Neon);
  return out;
}

std::string pathLabel(KernelPath p) {
  if (p == KernelPath::Neon && !cpuFeatures().neon) return "neon(emu)";
  if (p == KernelPath::Auto) return "AUTO";
  if (p == KernelPath::Sse2) return "HAND(sse2)";
  if (p == KernelPath::Avx2) return "HAND(avx2)";
  return toString(p);
}

double speedupOf(const Measurement& autoArm, const Measurement& handArm) {
  return handArm.stats.mean > 0 ? autoArm.stats.mean / handArm.stats.mean : 0;
}

void printSimulatedPlatformTable(platform::BenchKernel kernel, Size size) {
  const auto& catalog = platform::platformCatalog();
  Table t({"arm", "Atom D510", "Core2 Q9400", "i7 2820QM", "i5 3360M",
           "DM3730", "Ex-3110", "OMAP4460", "Ex-4412", "ODROID-X", "Tegra T30"});
  std::vector<std::string> autoRow{"AUTO"}, handRow{"HAND"}, spRow{"Speed-up"};
  for (const auto& p : catalog) {
    const auto r = platform::simulate(p, kernel, size);
    autoRow.push_back(fmtSeconds(r.auto_seconds));
    handRow.push_back(fmtSeconds(r.hand_seconds));
    spRow.push_back(fmtSpeedup(r.speedup()));
  }
  t.addRow(autoRow);
  t.addRow(handRow);
  t.addRow(spRow);
  t.print();
}

void printAnchorComparison(platform::BenchKernel kernel) {
  const auto& catalog = platform::platformCatalog();
  bool any = false;
  for (const auto& a : platform::paperAnchors()) {
    if (a.kernel != kernel) continue;
    for (const auto& p : catalog) {
      if (p.name != a.platform) continue;
      const auto r = platform::simulate(p, kernel, {3264, 2448});
      if (!any) {
        std::printf("paper-published speedup anchors (8mpx) vs model:\n");
        any = true;
      }
      std::printf("  %-26s paper %.2fx | model %.2fx\n", p.name.c_str(),
                  a.speedup, r.speedup());
    }
  }
  if (any) std::printf("\n");
}

}  // namespace simdcv::bench
