// Ablation A2: sensitivity of the HAND kernels to data alignment and to
// non-contiguous (ROI) layouts — the "data alignment" issue the paper cites
// from the vectorizing-compiler study [11].
#include <cstdio>
#include <vector>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

double timeIt(const std::function<void()>& fn, int reps) {
  bench::Timer t;
  t.start();
  for (int i = 0; i < reps; ++i) fn();
  return t.stop() / reps;
}

}  // namespace

int main() {
  bench::printHostBanner("Ablation A2: alignment and layout sensitivity");
  const std::size_t n = 1 << 22;
  const int reps = 20;

  // Offset the source by 0..3 floats from a 64-byte boundary.
  std::vector<float> storage(n + 16);
  bench::Rng rng(5);
  for (auto& v : storage) v = static_cast<float>(rng.uniform(-40000, 40000));
  std::vector<std::int16_t> dst(n + 16);

  std::printf("cvt32f16s, %zu px, source misaligned by K floats:\n", n);
  bench::Table t({"path", "K=0", "K=1", "K=2", "K=3"});
  for (KernelPath p : {KernelPath::Auto, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    std::vector<std::string> row{toString(p)};
    for (int k = 0; k < 4; ++k) {
      const float* src = storage.data() + k;
      row.push_back(bench::fmtSeconds(
          timeIt([&] { core::cvt32f16s(src, dst.data(), n, p); }, reps)));
    }
    t.addRow(std::move(row));
  }
  t.print();

  // ROI (non-continuous rows) versus full-frame processing.
  std::printf("\nthreshold u8, full frame vs interior ROI (per-row dispatch):\n");
  const Mat full = bench::makeScene(bench::Scene::Noise, {2048, 2048}, 1);
  const Mat roi = full.roi({3, 3, 2011, 2011});  // odd size, misaligned start
  bench::Table t2({"path", "full 2048x2048", "ROI 2011x2011", "ns/px full",
                   "ns/px roi"});
  for (KernelPath p : {KernelPath::Auto, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat d1, d2;
    const double tf = timeIt(
        [&] {
          imgproc::threshold(full, d1, 128, 255, imgproc::ThresholdType::Binary, p);
        },
        reps);
    const double tr = timeIt(
        [&] {
          imgproc::threshold(roi, d2, 128, 255, imgproc::ThresholdType::Binary, p);
        },
        reps);
    char f1[32], f2[32];
    std::snprintf(f1, sizeof(f1), "%.3f", tf / static_cast<double>(full.total()) * 1e9);
    std::snprintf(f2, sizeof(f2), "%.3f", tr / static_cast<double>(roi.total()) * 1e9);
    t2.addRow({toString(p), bench::fmtSeconds(tf), bench::fmtSeconds(tr), f1, f2});
  }
  t2.print();
  std::printf(
      "\nReading: the HAND kernels use unaligned loads, so K-offsets cost\n"
      "little on modern x86; ROI traversal pays per-row dispatch overhead\n"
      "plus alignment loss, which is why OpenCV (and this library) keep row\n"
      "starts cache-line aligned for owned storage.\n");
  return 0;
}
