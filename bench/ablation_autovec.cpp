// Ablation A1: how much of the paper's HAND-vs-AUTO gap was really
// "intrinsics beat the compiler" versus "the 2012 compiler failed to
// vectorize at all"?
//
// Three arms per kernel: scalar with the vectorizer disabled (2012-style
// AUTO), scalar with today's gcc vectorizer (modern AUTO), and hand
// intrinsics. If modern-AUTO ~= HAND, the paper's gap was a compiler
// limitation, not an intrinsic advantage — the paper's own §V conclusion.
#include <cstdio>

#include "common.hpp"

using namespace simdcv;
using platform::BenchKernel;

int main(int argc, char** argv) {
  bench::printHostBanner("Ablation A1: auto-vectorizer contribution");
  const auto proto = bench::Protocol::fromArgs(argc, argv);
  const Size size{2592, 1920};  // 5 mpx keeps the run short

  const BenchKernel kernels[] = {
      BenchKernel::ConvertF32S16, BenchKernel::ThresholdU8,
      BenchKernel::GaussianBlur, BenchKernel::Sobel, BenchKernel::EdgeDetect};

  bench::Table t({"Benchmark", "novec", "AUTO (gcc)", "HAND", "HAND/novec",
                  "HAND/AUTO", "AUTO/novec"});
  std::vector<std::vector<std::string>> csv;
  const KernelPath hand =
      pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2 : KernelPath::Neon;
  for (BenchKernel k : kernels) {
    const auto novec =
        bench::measureKernel(k, KernelPath::ScalarNoVec, size, proto);
    const auto autov = bench::measureKernel(k, KernelPath::Auto, size, proto);
    const auto handm = bench::measureKernel(k, hand, size, proto);
    std::vector<std::string> row{
        platform::toString(k),
        bench::fmtSeconds(novec.stats.mean),
        bench::fmtSeconds(autov.stats.mean),
        bench::fmtSeconds(handm.stats.mean),
        bench::fmtSpeedup(novec.stats.mean / handm.stats.mean),
        bench::fmtSpeedup(autov.stats.mean / handm.stats.mean),
        bench::fmtSpeedup(novec.stats.mean / autov.stats.mean)};
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  t.print();
  bench::writeCsv("ablation_autovec.csv",
                  {"bench", "novec", "auto", "hand", "hand_vs_novec",
                   "hand_vs_auto", "auto_vs_novec"},
                  csv);
  std::printf(
      "\nReading: HAND/novec reproduces the paper's regime (compiler does\n"
      "not vectorize); HAND/AUTO is the same experiment against a modern\n"
      "vectorizer. The difference between the two columns is the decade of\n"
      "compiler progress the paper's Section VI anticipated.\n");
  return 0;
}
