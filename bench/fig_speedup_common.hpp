// Shared driver for the Figure 2-6 reproductions: HAND/AUTO speedup series
// across all four image sizes — host-measured plus the simulated series for
// the paper's ten platforms — printed as aligned series and written to CSV.
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

namespace simdcv::bench {

/// One host-measured speedup series: label plus one ratio per resolution.
/// Kept numeric so the driver can both format the table row and emit the
/// machine-readable BENCH_<slug>.json consumed by scripts/bench_gate.sh.
struct SpeedupSeries {
  std::string label;
  std::vector<double> speedups;
};

/// Hook for figure-specific host-measured rows (e.g. fig6's fused-vs-unfused
/// ablation series): called once per series with the protocol and the four
/// paper resolutions.
using ExtraSeriesFn =
    std::function<SpeedupSeries(const Protocol&, const std::vector<Resolution>&)>;

inline int runSpeedupFigure(const char* figureName, const char* csvSlug,
                            platform::BenchKernel kernel, int argc,
                            char** argv,
                            const std::vector<ExtraSeriesFn>& extraSeries = {}) {
  printHostBanner(figureName);
  const auto proto = Protocol::fromArgs(argc, argv);
  const auto& resolutions = paperResolutions();

  // Host-measured speedup series, kept numeric for the JSON gate artifact.
  std::printf("-- host-measured HAND/AUTO speedups --\n");
  std::vector<std::string> header{"series"};
  for (const auto& r : resolutions) header.push_back(r.label);
  std::vector<SpeedupSeries> host;
  for (KernelPath hand : {KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(hand)) continue;
    SpeedupSeries series{std::string("host ") + pathLabel(hand), {}};
    for (const auto& r : resolutions) {
      const auto a = measureKernel(kernel, KernelPath::Auto, r.size, proto);
      const auto h = measureKernel(kernel, hand, r.size, proto);
      series.speedups.push_back(speedupOf(a, h));
    }
    host.push_back(std::move(series));
  }
  // The 2012-style baseline: what the speedup looks like against a compiler
  // that vectorizes nothing (paper-era gcc on these loops).
  {
    SpeedupSeries series{"host HAND vs scalar-novec", {}};
    const KernelPath hand =
        pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2 : KernelPath::Neon;
    for (const auto& r : resolutions) {
      const auto a = measureKernel(kernel, KernelPath::ScalarNoVec, r.size, proto);
      const auto h = measureKernel(kernel, hand, r.size, proto);
      series.speedups.push_back(speedupOf(a, h));
    }
    host.push_back(std::move(series));
  }
  for (const auto& fn : extraSeries) host.push_back(fn(proto, resolutions));

  Table t(header);
  std::vector<std::vector<std::string>> csv;
  for (const auto& series : host) {
    std::vector<std::string> row{series.label};
    for (double s : series.speedups) row.push_back(fmtSpeedup(s));
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  t.print();

  // Machine-readable speedup artifact for the perf-regression gate
  // (scripts/bench_gate.sh): one row per (series, resolution). Speedups are
  // within-process ratios, so clock drift mostly cancels — the same property
  // that makes the fusion suite gateable.
  {
    const auto hostInfo = platform::queryHost();
    const std::string jsonPath = std::string("BENCH_") + csvSlug + ".json";
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n  \"bench\": \"%s\",\n", csvSlug);
      std::fprintf(f,
                   "  \"host\": {\"brand\": \"%s\", \"logical_cpus\": %d, "
                   "\"l1d_kb\": %d, \"l2_kb\": %d, \"l3_kb\": %d},\n",
                   hostInfo.brand.c_str(), hostInfo.logical_cpus,
                   hostInfo.l1d_kb, hostInfo.l2_kb, hostInfo.l3_kb);
      std::fprintf(f, "  \"protocol\": {\"images\": %d, \"cycles\": %d},\n",
                   proto.images, proto.cycles);
      std::fprintf(f, "  \"results\": [\n");
      bool first = true;
      for (const auto& series : host) {
        for (std::size_t i = 0; i < series.speedups.size(); ++i) {
          std::fprintf(f,
                       "%s    {\"series\": \"%s\", \"resolution\": \"%s\", "
                       "\"speedup\": %.3f}",
                       first ? "" : ",\n", series.label.c_str(),
                       resolutions[i].label, series.speedups[i]);
          first = false;
        }
      }
      std::fprintf(f, "\n  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", jsonPath.c_str());
    }
  }

  // Simulated per-platform series (the figure's ten curves).
  std::printf("\n-- model-simulated speedups (paper platforms) --\n");
  Table s(header);
  std::vector<std::vector<std::string>> scsv;
  for (const auto& p : platform::platformCatalog()) {
    std::vector<std::string> row{p.name};
    for (const auto& r : resolutions)
      row.push_back(fmtSpeedup(platform::simulate(p, kernel, r.size).speedup()));
    scsv.push_back(row);
    s.addRow(std::move(row));
  }
  s.print();
  printAnchorComparison(kernel);

  std::vector<std::vector<std::string>> all = csv;
  all.insert(all.end(), scsv.begin(), scsv.end());
  writeCsv(std::string(csvSlug) + ".csv", header, all);

  // SIMDCV_TRACE=1 (or setEnabled): dump the whole run's span aggregate —
  // including the fused pipeline's per-stage rows for fig6 — and the raw
  // events as a chrome://tracing file next to the CSV.
  if (prof::enabled()) {
    std::printf("\n-- prof span summary (SIMDCV_TRACE=1) --\n");
    prof::writeSummary(std::cout, prof::snapshot());
    std::cout.flush();
    const std::string tracePath = std::string(csvSlug) + "_trace.json";
    if (prof::writeChromeTrace(tracePath))
      std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                  tracePath.c_str());
    else
      std::printf("chrome trace: failed to write %s\n", tracePath.c_str());
  }
  std::printf(
      "\n(The simulated series are flat across image size, matching the\n"
      "paper's observation that within a platform speedups are 'remarkably\n"
      "similar for all image sizes'.)\n");
  return 0;
}

}  // namespace simdcv::bench
