// Shared driver for the Figure 2-6 reproductions: HAND/AUTO speedup series
// across all four image sizes — host-measured plus the simulated series for
// the paper's ten platforms — printed as aligned series and written to CSV.
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

namespace simdcv::bench {

/// Hook for figure-specific host-measured rows (e.g. fig6's fused-vs-unfused
/// ablation series): called once per series with the protocol and the four
/// paper resolutions; returns the row label followed by one cell per
/// resolution.
using ExtraSeriesFn = std::function<std::vector<std::string>(
    const Protocol&, const std::vector<Resolution>&)>;

inline int runSpeedupFigure(const char* figureName, const char* csvSlug,
                            platform::BenchKernel kernel, int argc,
                            char** argv,
                            const std::vector<ExtraSeriesFn>& extraSeries = {}) {
  printHostBanner(figureName);
  const auto proto = Protocol::fromArgs(argc, argv);
  const auto& resolutions = paperResolutions();

  // Host-measured speedup series.
  std::printf("-- host-measured HAND/AUTO speedups --\n");
  std::vector<std::string> header{"series"};
  for (const auto& r : resolutions) header.push_back(r.label);
  Table t(header);
  std::vector<std::vector<std::string>> csv;
  for (KernelPath hand : {KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(hand)) continue;
    std::vector<std::string> row{std::string("host ") + pathLabel(hand)};
    for (const auto& r : resolutions) {
      const auto a = measureKernel(kernel, KernelPath::Auto, r.size, proto);
      const auto h = measureKernel(kernel, hand, r.size, proto);
      row.push_back(fmtSpeedup(speedupOf(a, h)));
    }
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  // The 2012-style baseline: what the speedup looks like against a compiler
  // that vectorizes nothing (paper-era gcc on these loops).
  {
    std::vector<std::string> row{"host HAND vs scalar-novec"};
    const KernelPath hand =
        pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2 : KernelPath::Neon;
    for (const auto& r : resolutions) {
      const auto a = measureKernel(kernel, KernelPath::ScalarNoVec, r.size, proto);
      const auto h = measureKernel(kernel, hand, r.size, proto);
      row.push_back(fmtSpeedup(speedupOf(a, h)));
    }
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  for (const auto& series : extraSeries) {
    std::vector<std::string> row = series(proto, resolutions);
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  t.print();

  // Simulated per-platform series (the figure's ten curves).
  std::printf("\n-- model-simulated speedups (paper platforms) --\n");
  Table s(header);
  std::vector<std::vector<std::string>> scsv;
  for (const auto& p : platform::platformCatalog()) {
    std::vector<std::string> row{p.name};
    for (const auto& r : resolutions)
      row.push_back(fmtSpeedup(platform::simulate(p, kernel, r.size).speedup()));
    scsv.push_back(row);
    s.addRow(std::move(row));
  }
  s.print();
  printAnchorComparison(kernel);

  std::vector<std::vector<std::string>> all = csv;
  all.insert(all.end(), scsv.begin(), scsv.end());
  writeCsv(std::string(csvSlug) + ".csv", header, all);

  // SIMDCV_TRACE=1 (or setEnabled): dump the whole run's span aggregate —
  // including the fused pipeline's per-stage rows for fig6 — and the raw
  // events as a chrome://tracing file next to the CSV.
  if (prof::enabled()) {
    std::printf("\n-- prof span summary (SIMDCV_TRACE=1) --\n");
    prof::writeSummary(std::cout, prof::snapshot());
    std::cout.flush();
    const std::string tracePath = std::string(csvSlug) + "_trace.json";
    if (prof::writeChromeTrace(tracePath))
      std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                  tracePath.c_str());
    else
      std::printf("chrome trace: failed to write %s\n", tracePath.c_str());
  }
  std::printf(
      "\n(The simulated series are flat across image size, matching the\n"
      "paper's observation that within a platform speedups are 'remarkably\n"
      "similar for all image sizes'.)\n");
  return 0;
}

}  // namespace simdcv::bench
