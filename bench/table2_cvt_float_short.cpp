// Table II reproduction: time to convert Float to Short Int across the four
// paper resolutions.
//
// Part 1 measures the real experiment on this host (gcc auto-vectorized
// scalar vs hand SSE2 intrinsics vs NEON intrinsics through the emulation
// layer). Part 2 prints the model-simulated table for the paper's ten
// platforms. Run with --paper for the full 5-images x 25-cycles protocol.
#include <cstdio>

#include "common.hpp"

using namespace simdcv;
using platform::BenchKernel;

int main(int argc, char** argv) {
  bench::printHostBanner("Table II: Convert Float to Short");
  const auto proto = bench::Protocol::fromArgs(argc, argv);

  std::printf("-- host-measured (mean over %d runs per cell) --\n",
              proto.images * proto.cycles);
  std::vector<std::string> header{"Image Size"};
  for (auto p : bench::benchPaths()) header.push_back(bench::pathLabel(p));
  header.push_back("SSE2 speedup");
  header.push_back("NEON(emu) speedup");
  bench::Table t(header);
  std::vector<std::vector<std::string>> csv;
  for (const auto& res : bench::paperResolutions()) {
    std::vector<std::string> row{res.label};
    bench::Measurement autoArm, sse2Arm, neonArm;
    for (auto p : bench::benchPaths()) {
      const auto m =
          bench::measureKernel(BenchKernel::ConvertF32S16, p, res.size, proto);
      row.push_back(bench::fmtSeconds(m.stats.mean));
      if (p == KernelPath::Auto) autoArm = m;
      if (p == KernelPath::Sse2) sse2Arm = m;
      if (p == KernelPath::Neon) neonArm = m;
    }
    row.push_back(bench::fmtSpeedup(bench::speedupOf(autoArm, sse2Arm)));
    row.push_back(bench::fmtSpeedup(bench::speedupOf(autoArm, neonArm)));
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  t.print();
  bench::writeCsv("table2_host.csv", header, csv);

  std::printf(
      "\nNote: the 2012 paper measured gcc-4.6, whose auto-vectorizer could\n"
      "not vectorize this loop (Section V); modern gcc largely can, so host\n"
      "AUTO-vs-HAND gaps are smaller than the paper's. The scalar-novec\n"
      "column shows the 2012-style baseline. NEON timings go through the\n"
      "x86 emulation layer: functional, not representative of ARM silicon.\n\n");

  std::printf("-- model-simulated Table II (paper platforms) --\n");
  for (const auto& res : bench::paperResolutions()) {
    std::printf("%s (%s):\n", res.label, res.mpx);
    bench::printSimulatedPlatformTable(BenchKernel::ConvertF32S16, res.size);
  }
  bench::printAnchorComparison(BenchKernel::ConvertF32S16);
  return 0;
}
