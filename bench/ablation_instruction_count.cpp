// Section V reproduction: instruction-level analysis of the conversion loop.
//
// The paper disassembles the ARM build and counts 14 instructions per 8
// output pixels for the intrinsic kernel, versus a scalar loop with a
// per-pixel lrint libcall for AUTO. We reproduce the accounting from our
// kernels' structure, time the paper's literal truncating NEON kernel
// against the rounding-correct variant, and verify the documented
// truncation/rounding divergence at runtime.
#include <cstdio>
#include <vector>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

double timeIt(const std::function<void()>& fn, int reps) {
  bench::Timer t;
  t.start();
  for (int i = 0; i < reps; ++i) fn();
  return t.stop() / reps;
}

}  // namespace

int main() {
  bench::printHostBanner("Ablation: Section V instruction-count analysis");

  std::printf("per-8-pixel accounting of the conversion kernels:\n");
  bench::Table t({"arm", "vector ops", "loop overhead", "total / 8 px",
                  "ops per pixel"});
  // NEON HAND: 2x vld1q, 2x vcvt, 2x vqmovn, 1x vcombine, 1x vst1q = 8
  // vector instructions + 6 address/loop instructions (paper Section V).
  t.addRow({"NEON HAND (paper asm)", "8", "6", "14", "1.75"});
  // SSE2 HAND: 2x loadu, 2x cvtps, 1x packs, 1x storeu = 6 + ~5 overhead.
  t.addRow({"SSE2 HAND", "6", "~5", "~11", "~1.4"});
  // 2012 AUTO (ARM): per-pixel vldmia, vcvt.f64.f32, vmov, bl lrint, clamp,
  // store = ~7 instructions + a libcall per pixel.
  t.addRow({"AUTO gcc-4.6 (paper asm)", "0", "-", "~56+8 calls", "~7+call"});
  t.print();

  const std::size_t n = 1 << 22;
  const Mat img = bench::makeFloatScene(bench::Scene::Natural, {2048, 2048}, 3);
  const float* src = img.ptr<float>(0);
  std::vector<std::int16_t> dst(n);
  const int reps = 20;

  // Live Section V reproduction: measure instructions-per-pixel from
  // hardware counters when perf_event is usable; otherwise the static
  // accounting above stands alone (the documented graceful fallback).
  if (prof::hwCountersUsable()) {
    prof::PerfCounters counters;
    auto instrPerPixel = [&](const std::function<void()>& fn) {
      fn();  // warm caches and fault pages outside the counted window
      const prof::HwCounters a = counters.read();
      fn();
      const prof::HwCounters b = counters.read();
      return static_cast<double>(b.instructions - a.instructions) /
             static_cast<double>(n);
    };
    std::printf("\nlive perf_event instructions per pixel (%zu px, 1 pass):\n",
                n);
    std::printf("  scalar-novec : %6.2f\n", instrPerPixel([&] {
                  core::cvt32f16s(src, dst.data(), n, KernelPath::ScalarNoVec);
                }));
    std::printf("  AUTO         : %6.2f\n", instrPerPixel([&] {
                  core::cvt32f16s(src, dst.data(), n, KernelPath::Auto);
                }));
    std::printf("  SSE2 HAND    : %6.2f\n", instrPerPixel([&] {
                  core::cvt32f16s(src, dst.data(), n, KernelPath::Sse2);
                }));
    std::printf("  NEON HAND    : %6.2f  (emulated on x86: emulation inflates"
                " the count)\n",
                instrPerPixel([&] {
                  core::cvt32f16s(src, dst.data(), n, KernelPath::Neon);
                }));
    std::printf(
        "  (compare: paper's static accounting above gives 1.75/px NEON)\n");
  } else {
    std::printf("\nlive perf_event counters unavailable (%s);\n"
                "falling back to the static accounting table above.\n",
                prof::hwCountersUnavailableReason().c_str());
  }

  const double tRound = timeIt(
      [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::Neon); }, reps);
  const double tPaper =
      timeIt([&] { core::cvt32f16sNeonPaper(src, dst.data(), n); }, reps);
  const double tSse = timeIt(
      [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::Sse2); }, reps);
  const double tAuto = timeIt(
      [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::Auto); }, reps);
  const double tNovec = timeIt(
      [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::ScalarNoVec); },
      reps);

  std::printf("\nmeasured on %zu pixels (%d reps):\n", n, reps);
  std::printf("  scalar-novec                 : %s\n", bench::fmtSeconds(tNovec).c_str());
  std::printf("  AUTO (gcc today)             : %s\n", bench::fmtSeconds(tAuto).c_str());
  std::printf("  SSE2 HAND                    : %s\n", bench::fmtSeconds(tSse).c_str());
  std::printf("  NEON HAND (rounding, emu)    : %s\n", bench::fmtSeconds(tRound).c_str());
  std::printf("  NEON HAND (paper, truncating): %s\n", bench::fmtSeconds(tPaper).c_str());

  // Verify the documented semantic difference of the paper's literal kernel.
  const float probe[8] = {1.9f, -1.9f, 0.5f, 1.5f, 2.5f, -2.5f, 100.7f, -0.4f};
  std::int16_t roundOut[8], truncOut[8];
  core::cvt32f16s(probe, roundOut, 8, KernelPath::Neon);
  core::cvt32f16sNeonPaper(probe, truncOut, 8);
  std::printf("\nrounding divergence of the paper's literal kernel:\n");
  std::printf("  input    : ");
  for (float v : probe) std::printf("%7.2f ", static_cast<double>(v));
  std::printf("\n  rounded  : ");
  for (std::int16_t v : roundOut) std::printf("%7d ", v);
  std::printf("\n  truncated: ");
  for (std::int16_t v : truncOut) std::printf("%7d ", v);
  std::printf(
      "\n\nConclusion (matches paper Section V): the HAND kernel's advantage\n"
      "is structural — it converts whole 8-pixel blocks, while the 2012\n"
      "auto-vectorizer fell back to per-pixel scalar code with a rounding\n"
      "libcall. Note the paper's printed NEON kernel truncates where the\n"
      "scalar reference rounds; our library kernel uses the rounding\n"
      "variant and keeps bit-exactness (DESIGN.md section 5).\n");
  return 0;
}
