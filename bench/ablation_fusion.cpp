// Fusion ablation: fused single-pass edge detection vs the unfused 4-pass
// reference at the paper's four resolutions, per kernel path. Both forms are
// bit-exact (checked by `check_all --only edge`), so the ratio isolates the
// effect of cache blocking alone: the unfused pipeline round-trips two 16S
// gradient images and a U8 magnitude image through memory; the fused engine
// keeps an O(ksize)-row ring resident instead.
//
// Emits BENCH_fusion.json next to the working directory with the raw
// mean-seconds per (resolution, path, form) plus host info.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "simdcv.hpp"

namespace {

using namespace simdcv;
using namespace simdcv::bench;

struct Row {
  std::string resolution;
  std::string path;
  double unfused_s = 0;
  double fused_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  printHostBanner("Ablation: fused vs unfused edge detection");
  const auto proto = Protocol::fromArgs(argc, argv);
  const auto host = platform::queryHost();

  std::vector<Row> rows;
  Table t({"size", "path", "unfused", "fused", "fused speedup"});
  for (const auto& r : paperResolutions()) {
    for (KernelPath p : benchPaths()) {
      if (!pathAvailable(p)) continue;
      const auto unfused = measureEdgeVariant(false, p, r.size, proto);
      const auto fused = measureEdgeVariant(true, p, r.size, proto);
      Row row;
      row.resolution = r.label;
      row.path = pathLabel(p);
      row.unfused_s = unfused.stats.mean;
      row.fused_s = fused.stats.mean;
      rows.push_back(row);
      t.addRow({r.label, row.path, fmtSeconds(row.unfused_s),
                fmtSeconds(row.fused_s),
                fmtSpeedup(row.unfused_s / row.fused_s)});
    }
  }
  t.print();
  std::printf(
      "\n(Fused and unfused outputs are bit-identical on every path; the\n"
      "speedup is pure cache blocking. On hosts whose last-level cache\n"
      "holds the whole-image intermediates, the gap narrows accordingly.)\n");

  std::FILE* f = std::fopen("BENCH_fusion.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fusion.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_fusion\",\n");
  std::fprintf(f, "  \"host\": {\"brand\": \"%s\", \"logical_cpus\": %d, "
                  "\"l1d_kb\": %d, \"l2_kb\": %d, \"l3_kb\": %d},\n",
               host.brand.c_str(), host.logical_cpus, host.l1d_kb, host.l2_kb,
               host.l3_kb);
  std::fprintf(f, "  \"protocol\": {\"images\": %d, \"cycles\": %d},\n",
               proto.images, proto.cycles);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"resolution\": \"%s\", \"path\": \"%s\", "
                 "\"unfused_s\": %.6e, \"fused_s\": %.6e, \"speedup\": %.3f}%s\n",
                 row.resolution.c_str(), row.path.c_str(), row.unfused_s,
                 row.fused_s, row.unfused_s / row.fused_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fusion.json\n");
  return 0;
}
