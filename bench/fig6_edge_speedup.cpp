// Figure 6 reproduction: Edge Detection relative speed-up factor.
#include "fig_speedup_common.hpp"

int main(int argc, char** argv) {
  return simdcv::bench::runSpeedupFigure(
      "Figure 6: Edge Detection relative speed-up", "fig6_edge_speedup",
      simdcv::platform::BenchKernel::EdgeDetect, argc, argv);
}
