// Figure 6 reproduction: Edge Detection relative speed-up factor, plus the
// fusion-ablation series (fused single-pass engine vs the unfused 4-pass
// reference, bit-exact by construction) on the autovectorized path and the
// best available HAND path.
#include "fig_speedup_common.hpp"

namespace {

using namespace simdcv::bench;
using simdcv::KernelPath;

ExtraSeriesFn fusedVsUnfusedSeries(KernelPath path) {
  return [path](const Protocol& proto,
                const std::vector<Resolution>& resolutions) {
    SpeedupSeries series{std::string("host fused/unfused ") + pathLabel(path),
                         {}};
    for (const auto& r : resolutions) {
      const auto unfused = measureEdgeVariant(false, path, r.size, proto);
      const auto fused = measureEdgeVariant(true, path, r.size, proto);
      series.speedups.push_back(unfused.stats.mean / fused.stats.mean);
    }
    return series;
  };
}

}  // namespace

int main(int argc, char** argv) {
  const KernelPath hand = simdcv::pathAvailable(KernelPath::Sse2)
                              ? KernelPath::Sse2
                              : KernelPath::Neon;
  return runSpeedupFigure(
      "Figure 6: Edge Detection relative speed-up", "fig6_edge_speedup",
      simdcv::platform::BenchKernel::EdgeDetect, argc, argv,
      {fusedVsUnfusedSeries(KernelPath::Auto), fusedVsUnfusedSeries(hand)});
}
