// Extension bench: the OpenCV routines the paper's related work ([23],
// Pulli et al., CACM 2012) reports NEON speedups for on Tegra 3 — median
// blur (23x), color conversion (9.5x), resizing (7.6x) — measured here with
// our kernels, HAND vs the 2012-style no-vectorizer baseline and vs today's
// auto-vectorizer.
#include <cstdio>
#include <functional>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

double timeIt(const std::function<void()>& fn, int reps) {
  bench::Timer t;
  t.start();
  for (int i = 0; i < reps; ++i) fn();
  return t.stop() / reps;
}

}  // namespace

int main() {
  bench::printHostBanner("Extension: related-work kernels ([23] Tegra 3 NEON)");
  const int reps = 10;
  const Size size{1920, 1080};  // 1080p, the video size [23] targets
  const KernelPath hand =
      pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2 : KernelPath::Neon;

  const Mat gray = bench::makeScene(bench::Scene::Natural, size, 1);
  Mat bgr;
  imgproc::cvtColor(gray, bgr, imgproc::ColorCode::GRAY2BGR);

  bench::Table t({"kernel", "novec", "AUTO", "HAND", "HAND/novec", "HAND/AUTO",
                  "paper-cited NEON"});

  auto addRow = [&](const char* name, const char* cited,
                    const std::function<void(KernelPath)>& fn) {
    const double novec = timeIt([&] { fn(KernelPath::ScalarNoVec); }, reps);
    const double autov = timeIt([&] { fn(KernelPath::Auto); }, reps);
    const double handt = timeIt([&] { fn(hand); }, reps);
    t.addRow({name, bench::fmtSeconds(novec), bench::fmtSeconds(autov),
              bench::fmtSeconds(handt), bench::fmtSpeedup(novec / handt),
              bench::fmtSpeedup(autov / handt), cited});
  };

  Mat dst;
  addRow("medianBlur 3x3", "23x", [&](KernelPath p) {
    imgproc::medianBlur(gray, dst, 3, p);
  });
  addRow("cvtColor BGR->GRAY", "9.5x", [&](KernelPath p) {
    imgproc::cvtColor(bgr, dst, imgproc::ColorCode::BGR2GRAY, p);
  });
  addRow("resize 1080p -> 720p", "7.6x", [&](KernelPath p) {
    imgproc::resize(gray, dst, {1280, 720}, imgproc::Interp::Linear, p);
  });
  addRow("pyrDown", "-", [&](KernelPath p) { imgproc::pyrDown(gray, dst, p); });
  addRow("Canny 80/200", "1.6x", [&](KernelPath p) {
    imgproc::Canny(gray, dst, 80, 200, 3, p);
  });
  t.print();

  std::printf(
      "\nNotes: [23]'s factors compare NEON against OpenCV's scalar builds\n"
      "on a Cortex-A9 (closest column: HAND/novec). The x86 SSE2 ratios\n"
      "here differ because (a) the scalar ISA is stronger, (b) median's\n"
      "min/max network auto-vectorizes poorly but the gather-heavy parts of\n"
      "resize do not vectorize at all on either compiler generation.\n");
  return 0;
}
