// Figure 1 reproduction: scalar vs SIMD vector addition.
//
// The figure's claim: adding two 4-element float vectors takes 16 scalar
// instructions (4x load, 4x load, 4x add, 4x store) but 4 SIMD instructions
// (load, load, add, store) — a theoretical 4x. We (a) print that static
// instruction accounting for our actual kernels, and (b) measure the
// realized throughput ratio on a long vector add.
#include <cstdio>
#include <vector>

#include "simdcv.hpp"
// Not part of the public API: this figure hand-writes NEON kernels inline
// (the paper's scalar-vs-SIMD comparison), so it needs the intrinsics shim.
#include "simd/neon_compat.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

using namespace simdcv;

namespace {

// The scalar loop of Figure 1's left-hand side (vectorizer disabled).
__attribute__((noinline, optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
void addScalar(const float* a, const float* b, float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}

__attribute__((noinline)) void addAuto(const float* a, const float* b,
                                       float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}

#if defined(__SSE2__)
__attribute__((noinline)) void addSse2(const float* a, const float* b,
                                       float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm_storeu_ps(c + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  for (; i < n; ++i) c[i] = a[i] + b[i];
}
#endif

__attribute__((noinline)) void addNeon(const float* a, const float* b,
                                       float* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) c[i] = a[i] + b[i];
}

double throughput(void (*fn)(const float*, const float*, float*, std::size_t),
                  const std::vector<float>& a, const std::vector<float>& b,
                  std::vector<float>& c, int reps) {
  bench::Timer t;
  t.start();
  for (int r = 0; r < reps; ++r) {
    fn(a.data(), b.data(), c.data(), a.size());
    bench::doNotOptimize(c[0]);
  }
  return t.stop() / reps;
}

}  // namespace

int main() {
  bench::printHostBanner("Figure 1: Scalar vs SIMD Vector Addition");

  std::printf("static instruction accounting for C = A + B (4 elements):\n");
  bench::Table t({"arm", "loads", "adds", "stores", "total"});
  t.addRow({"scalar", "8", "4", "4", "16"});
  t.addRow({"SIMD (128-bit)", "2", "1", "1", "4"});
  t.print();
  std::printf("theoretical speed-up: 4.0x\n\n");

  const std::size_t n = 1 << 20;
  const int reps = 50;
  std::vector<float> a(n), b(n), c(n);
  bench::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.uniform(-1, 1));
    b[i] = static_cast<float>(rng.uniform(-1, 1));
  }

  const double sScalar = throughput(addScalar, a, b, c, reps);
  const double sAuto = throughput(addAuto, a, b, c, reps);
  std::printf("measured on %zu-element vectors (%d reps):\n", n, reps);
  std::printf("  scalar (novector pragma) : %s/pass\n",
              bench::fmtSeconds(sScalar).c_str());
  std::printf("  auto-vectorized          : %s/pass (%.2fx)\n",
              bench::fmtSeconds(sAuto).c_str(), sScalar / sAuto);
#if defined(__SSE2__)
  const double sSse = throughput(addSse2, a, b, c, reps);
  std::printf("  SSE2 intrinsics          : %s/pass (%.2fx)\n",
              bench::fmtSeconds(sSse).c_str(), sScalar / sSse);
#endif
  const double sNeon = throughput(addNeon, a, b, c, reps);
  std::printf("  NEON intrinsics%s : %s/pass (%.2fx)\n",
              cpuFeatures().neon ? "          " : " (emulated)",
              bench::fmtSeconds(sNeon).c_str(), sScalar / sNeon);
  std::printf(
      "\n(A memory-bound add rarely reaches the theoretical 4x: the paper's\n"
      "Figure 1 counts instructions, not cycles. The instruction-count side\n"
      "is exact; the throughput side shows the roofline cap in practice.)\n");
  return 0;
}
