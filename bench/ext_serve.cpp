// Serving-engine load generator: drives simdcv::serve::Engine with a matrix
// of {pipeline} x {workers} x {resolution} x {closed, open} cells and reports
// p50/p99 request latency, queue-wait percentiles, and throughput.
//
//   closed loop  2xW client threads submit back to back (blocking submit, so
//                the ingress ring applies backpressure); measures the
//                engine's capacity and best-case latency.
//   open loop    a dispatcher issues trySubmit at 1.2x the measured
//                closed-loop throughput with a 250 ms deadline; measures
//                behaviour under overload — latency of completed requests
//                plus how much load is shed (rejected-full / expired).
//
// Emits BENCH_serve.json in the working directory. SIMDCV_BENCH_SMOKE=1
// shrinks the matrix (320x240, workers {1,2}, 6 requests per cell) so CI can
// run the binary end to end; --requests=N overrides the per-cell count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "simdcv.hpp"

namespace {

using namespace simdcv;
using namespace simdcv::bench;

struct Cell {
  std::string pipeline;
  std::string mode;  // "closed" | "open"
  int workers = 0;
  std::string resolution;
  int requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  // trySubmit refused: ring full
  std::uint64_t expired = 0;   // deadline passed before execute
  double p50_ms = 0, p99_ms = 0, mean_ms = 0;
  double wait_p50_ms = 0, wait_p99_ms = 0;
  double images_per_sec = 0;
};

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// A fixed-seed image pool cycled across requests (the paper's protocol cycles
// images so repeated requests do not hit a warm identical working set).
std::vector<Mat> imagePool(Size size) {
  std::vector<Mat> pool;
  const Scene scenes[] = {Scene::Checker, Scene::Gradient, Scene::Noise,
                          Scene::Blobs};
  std::uint32_t seed = 11;
  for (Scene s : scenes) pool.push_back(makeScene(s, size, seed++));
  return pool;
}

// Closed loop: `2 * workers` clients, each submitting back to back until the
// shared budget is spent. Blocking submit, no deadline.
Cell runClosed(const std::string& pipeline, int workers, Size size,
               const char* sizeLabel, int requests) {
  serve::Options opts;
  opts.workers = workers;
  opts.queue_capacity = 64;
  serve::Engine engine(opts);
  const std::vector<Mat> pool = imagePool(size);

  std::atomic<int> budget{requests};
  std::mutex mu;
  std::vector<double> lat_ms, wait_ms;
  const std::uint64_t t0 = prof::nowNs();
  std::vector<std::thread> clients;
  const int nClients = 2 * workers;
  for (int c = 0; c < nClients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const int i = budget.fetch_sub(1, std::memory_order_relaxed);
        if (i <= 0) break;
        const Mat& src = pool[static_cast<std::size_t>(c + i) % pool.size()];
        serve::Response r = engine.submit(pipeline, src).get();
        if (r.status != serve::Status::Ok) continue;
        doNotOptimize(r.image.data());
        std::lock_guard<std::mutex> lk(mu);
        lat_ms.push_back(static_cast<double>(r.totalNs()) * 1e-6);
        wait_ms.push_back(static_cast<double>(r.queueWaitNs()) * 1e-6);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = static_cast<double>(prof::nowNs() - t0) * 1e-9;
  engine.shutdown(serve::Shutdown::Drain);
  const serve::Stats s = engine.stats();

  Cell cell;
  cell.pipeline = pipeline;
  cell.mode = "closed";
  cell.workers = workers;
  cell.resolution = sizeLabel;
  cell.requests = requests;
  cell.completed = s.completed;
  cell.rejected = s.rejected_full;
  cell.expired = s.expired;
  double sum = 0;
  for (double v : lat_ms) sum += v;
  cell.mean_ms = lat_ms.empty() ? 0 : sum / static_cast<double>(lat_ms.size());
  cell.p50_ms = percentile(lat_ms, 0.50);
  cell.p99_ms = percentile(lat_ms, 0.99);
  cell.wait_p50_ms = percentile(wait_ms, 0.50);
  cell.wait_p99_ms = percentile(wait_ms, 0.99);
  cell.images_per_sec =
      wall_s > 0 ? static_cast<double>(s.completed) / wall_s : 0;
  return cell;
}

// Open loop: one dispatcher issues trySubmit on a fixed tick at `rate`
// requests/sec with a 250 ms deadline. Overload behaviour: the ring sheds
// load via RejectedFull and the deadline drops stale queue entries.
Cell runOpen(const std::string& pipeline, int workers, Size size,
             const char* sizeLabel, int requests, double rate) {
  serve::Options opts;
  opts.workers = workers;
  opts.queue_capacity = 64;
  serve::Engine engine(opts);
  const std::vector<Mat> pool = imagePool(size);

  serve::SubmitOptions so;
  so.deadline_ns = std::uint64_t(250) * 1000000;  // 250 ms
  const auto interval = std::chrono::nanoseconds(
      rate > 0 ? static_cast<std::uint64_t>(1e9 / rate) : 1);

  std::vector<std::future<serve::Response>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const std::uint64_t t0 = prof::nowNs();
  auto next = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    const Mat& src = pool[static_cast<std::size_t>(i) % pool.size()];
    futs.push_back(engine.trySubmit(pipeline, src, so));
    next += interval;
    std::this_thread::sleep_until(next);
  }
  std::vector<double> lat_ms, wait_ms;
  for (auto& f : futs) {
    serve::Response r = f.get();
    if (r.status != serve::Status::Ok) continue;
    doNotOptimize(r.image.data());
    lat_ms.push_back(static_cast<double>(r.totalNs()) * 1e-6);
    wait_ms.push_back(static_cast<double>(r.queueWaitNs()) * 1e-6);
  }
  const double wall_s = static_cast<double>(prof::nowNs() - t0) * 1e-9;
  engine.shutdown(serve::Shutdown::Drain);
  const serve::Stats s = engine.stats();

  Cell cell;
  cell.pipeline = pipeline;
  cell.mode = "open";
  cell.workers = workers;
  cell.resolution = sizeLabel;
  cell.requests = requests;
  cell.completed = s.completed;
  cell.rejected = s.rejected_full;
  cell.expired = s.expired;
  double sum = 0;
  for (double v : lat_ms) sum += v;
  cell.mean_ms = lat_ms.empty() ? 0 : sum / static_cast<double>(lat_ms.size());
  cell.p50_ms = percentile(lat_ms, 0.50);
  cell.p99_ms = percentile(lat_ms, 0.99);
  cell.wait_p50_ms = percentile(wait_ms, 0.50);
  cell.wait_p99_ms = percentile(wait_ms, 0.99);
  cell.images_per_sec =
      wall_s > 0 ? static_cast<double>(s.completed) / wall_s : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  printHostBanner("Serving engine: closed/open-loop load generator");

  const char* smokeEnv = std::getenv("SIMDCV_BENCH_SMOKE");
  const bool smoke = smokeEnv != nullptr && std::strcmp(smokeEnv, "1") == 0;

  int requests = smoke ? 6 : 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0)
      requests = std::max(1, std::atoi(argv[i] + 11));
  }

  struct SizeSpec {
    Size size;
    const char* label;
  };
  const std::vector<SizeSpec> sizes =
      smoke ? std::vector<SizeSpec>{{{320, 240}, "320x240"}}
            : std::vector<SizeSpec>{{{640, 480}, "640x480"},
                                    {{1024, 960}, "1024x960"}};
  const std::vector<int> workerCounts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const std::vector<std::string> pipelines = {"edge", "scanner"};

  std::printf("requests/cell: %d%s\n\n", requests, smoke ? " (smoke)" : "");

  std::vector<Cell> cells;
  Table t({"pipeline", "mode", "workers", "size", "done", "shed", "p50 ms",
           "p99 ms", "img/s"});
  for (const std::string& pipe : pipelines) {
    for (const SizeSpec& sz : sizes) {
      for (int w : workerCounts) {
        Cell closed = runClosed(pipe, w, sz.size, sz.label, requests);
        // Open loop arrives at 1.2x the just-measured capacity, so the ring
        // is persistently oversubscribed and the shed paths light up.
        const double rate = std::max(1.0, closed.images_per_sec * 1.2);
        Cell open = runOpen(pipe, w, sz.size, sz.label, requests, rate);
        for (const Cell& c : {closed, open}) {
          t.addRow({c.pipeline, c.mode, std::to_string(c.workers),
                    c.resolution, std::to_string(c.completed),
                    std::to_string(c.rejected + c.expired), fmt2(c.p50_ms),
                    fmt2(c.p99_ms), fmt2(c.images_per_sec)});
          cells.push_back(c);
        }
      }
    }
  }
  t.print();
  std::printf(
      "\n(closed loop: 2xW blocking clients, engine at capacity;\n"
      " open loop: fixed-rate trySubmit at 1.2x closed throughput with a\n"
      " 250 ms deadline — `shed` counts rejected-full + expired requests.)\n");

  const auto host = platform::queryHost();
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_serve\",\n");
  std::fprintf(f, "  \"host\": {\"brand\": \"%s\", \"logical_cpus\": %d, "
                  "\"l1d_kb\": %d, \"l2_kb\": %d, \"l3_kb\": %d},\n",
               host.brand.c_str(), host.logical_cpus, host.l1d_kb, host.l2_kb,
               host.l3_kb);
  std::fprintf(f,
               "  \"config\": {\"requests_per_cell\": %d, \"smoke\": %s, "
               "\"queue_capacity\": 64, \"open_deadline_ms\": 250},\n",
               requests, smoke ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"pipeline\": \"%s\", \"mode\": \"%s\", \"workers\": %d, "
        "\"resolution\": \"%s\", \"requests\": %d, \"completed\": %llu, "
        "\"rejected\": %llu, \"expired\": %llu, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"mean_ms\": %.3f, \"wait_p50_ms\": %.3f, "
        "\"wait_p99_ms\": %.3f, \"images_per_sec\": %.2f}%s\n",
        c.pipeline.c_str(), c.mode.c_str(), c.workers, c.resolution.c_str(),
        c.requests, static_cast<unsigned long long>(c.completed),
        static_cast<unsigned long long>(c.rejected),
        static_cast<unsigned long long>(c.expired), c.p50_ms, c.p99_ms,
        c.mean_ms, c.wait_p50_ms, c.wait_p99_ms, c.images_per_sec,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}
