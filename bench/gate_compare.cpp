// gate_compare — CLI front end of the perf-regression gate.
//
//   gate_compare --baseline BENCH_fusion.json --candidate build/BENCH_fusion.json \
//                [--metrics speedup,images_per_sec] [--tolerance 0.15]
//
// Exit code is the Outcome enum: 0 ok, 1 regression (every offending metric
// named on stderr), 2 missing baseline, 3 parse error, 4 no row overlap,
// 5 host mismatch (baseline recorded on another machine; --ignore-host to
// compare anyway), 64 usage error. scripts/bench_gate.sh drives this against
// the committed smoke baselines after a smoke bench run.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/gate.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline FILE --candidate FILE"
               " [--metrics a,b,c] [--tolerance FRAC] [--ignore-host]\n",
               argv0);
}

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simdcv::bench;

  std::string baseline, candidate;
  gate::CompareOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 64; }
      baseline = v;
    } else if (arg == "--candidate") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 64; }
      candidate = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 64; }
      opts.metrics = splitCsv(v);
    } else if (arg == "--tolerance") {
      const char* v = next();
      char* end = nullptr;
      const double t = v != nullptr ? std::strtod(v, &end) : -1.0;
      if (v == nullptr || end == v || *end != '\0' || t < 0.0 || t > 10.0) {
        std::fprintf(stderr, "gate_compare: bad --tolerance value\n");
        return 64;
      }
      opts.tolerance = t;
    } else if (arg == "--ignore-host") {
      opts.ignore_host_mismatch = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gate_compare: unknown argument %s\n", arg.c_str());
      usage(argv[0]);
      return 64;
    }
  }
  if (baseline.empty() || candidate.empty()) {
    usage(argv[0]);
    return 64;
  }

  const gate::CompareReport rep = gate::compareFiles(baseline, candidate, opts);
  for (const std::string& m : rep.messages)
    std::fprintf(stderr, "gate_compare: %s\n", m.c_str());
  std::fprintf(stderr,
               "gate_compare: %s — %d row(s) matched (%d unmatched), "
               "%d metric value(s) compared, tolerance %.0f%%\n",
               gate::toString(rep.outcome), rep.rows_matched,
               rep.rows_unmatched, rep.metrics_compared,
               opts.tolerance * 100.0);
  return static_cast<int>(rep.outcome);
}
