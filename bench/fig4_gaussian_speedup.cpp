// Figure 4 reproduction: Gaussian Blur relative speed-up factor.
#include "fig_speedup_common.hpp"

int main(int argc, char** argv) {
  return simdcv::bench::runSpeedupFigure(
      "Figure 4: Gaussian Blur relative speed-up", "fig4_gaussian_speedup",
      simdcv::platform::BenchKernel::GaussianBlur, argc, argv);
}
