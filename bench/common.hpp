// Shared machinery for the table/figure reproduction binaries: measured
// kernel runners (host) and simulated results (platform cost model).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simdcv.hpp"

namespace simdcv::bench {

/// Host measurement of one paper benchmark kernel at one resolution on one
/// kernel path, following the paper's protocol (images cycled `cycles`
/// times; reported value is the mean over all runs).
struct Measurement {
  Stats stats;
  KernelPath path;
  platform::BenchKernel kernel;
  Size size;
};

Measurement measureKernel(platform::BenchKernel kernel, KernelPath path,
                          Size size, const Protocol& proto);

/// Host measurement of the edge pipeline in a specific form: the fused
/// single-pass engine or the unfused 4-pass reference. The fusion-ablation
/// hook (ablation_fusion, fig6's fused-vs-unfused series); both forms are
/// bit-exact, so this isolates the cache-blocking effect alone.
Measurement measureEdgeVariant(bool fused, KernelPath path, Size size,
                               const Protocol& proto);

/// Verbosity from SIMDCV_BENCH_VERBOSE (0 when unset/unparsable):
///   1  measureKernel prints the runtime thread count and pool activity
///      (tasks/steals/parks/unparks) per measurement;
///   2  additionally force-enables prof tracing around each measurement and
///      prints the per-kernel x per-path span summary — for the fused edge
///      pipeline that includes the per-stage breakdown (edge.fused.rowConv /
///      colConv / cvt / magnitude / threshold).
int benchVerboseLevel();

/// The KernelPaths benchmarked on the host, in print order. NEON runs
/// through the emulation layer on x86 and is labelled accordingly.
std::vector<KernelPath> benchPaths();

/// Label for a path, marking emulated NEON: "neon(emu)".
std::string pathLabel(KernelPath p);

/// Speedup of HAND (best available native-intent path) over AUTO.
double speedupOf(const Measurement& autoArm, const Measurement& handArm);

/// Print the simulated 10-platform table for a kernel at a size, in the
/// paper's Table II/III layout (AUTO / HAND / Speed-up rows).
void printSimulatedPlatformTable(platform::BenchKernel kernel, Size size);

/// Print model-vs-paper anchor comparison lines for this kernel.
void printAnchorComparison(platform::BenchKernel kernel);

}  // namespace simdcv::bench
