// Graph-fusion ablation: the pipeline-graph engine's streaming schedule vs
// its stage-by-stage schedule for three declared chains, at the paper's
// resolutions, per kernel path. Both schedules are bit-exact (checked by
// `check_all --only graph`), so each ratio isolates cache blocking alone —
// the staged walk round-trips every intermediate image through memory, the
// fused walk keeps O(ksize)-row rings resident.
//
// Chains:
//   edge       makeEdgeGraph: sobelX/sobelY (s16) -> magnitude -> threshold
//              (the graph re-expression of the edgeDetect preset; its ratio
//              should track ablation_fusion's)
//   blur-sobel makeBlurSobelThresholdGraph: gauss5 -> sobel3 (s16) ->
//              threshold (a chain no hand-fused kernel covers)
//   photo      makePhotoGraph: cvt f32 -> blur5 -> tone pointwise -> blur7
//              -> addWeighted (multi-consumer) -> cvt u8 (f32 working depth,
//              the heaviest intermediate footprint)
//
// Emits BENCH_graph.json in the working directory. SIMDCV_BENCH_SMOKE=1
// shrinks the protocol to 2 images x 1 cycle (Protocol::fromArgs).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "simdcv.hpp"

namespace {

using namespace simdcv;
using namespace simdcv::bench;

struct Chain {
  const char* name;
  graph::Graph g;
};

std::vector<Chain> chains() {
  std::vector<Chain> c;
  c.push_back({"edge", graph::makeEdgeGraph(Depth::U8, 100.0, 3,
                                            imgproc::BorderType::Reflect101)});
  c.push_back({"blur-sobel",
               graph::makeBlurSobelThresholdGraph(
                   Depth::U8, 5, 1.1, 3, 700.0,
                   imgproc::BorderType::Reflect101)});
  c.push_back({"photo", graph::makePhotoGraph(5, 0.9, 7, 1.4, 1.12, -8.0,
                                              1.4)});
  return c;
}

struct Row {
  std::string chain;
  std::string resolution;
  std::string path;
  std::size_t staged_bytes = 0;
  double staged_s = 0;
  double fused_s = 0;
};

Stats measureSchedule(const graph::Graph& g, bool fused, KernelPath p,
                      Size size, const Protocol& proto) {
  const auto images = makeImageSet(size, Depth::U8);
  std::vector<Mat> dsts(images.size());
  auto fn = [&, p, fused](int i) {
    const auto idx = static_cast<std::size_t>(i);
    if (fused)
      g.runFused(images[idx], dsts[idx], p);
    else
      g.runStaged(images[idx], dsts[idx], p);
  };
  runtime::warmupPool();
  for (std::size_t i = 0; i < images.size(); ++i) fn(static_cast<int>(i));
  return summarize(runProtocol(proto, fn));
}

}  // namespace

int main(int argc, char** argv) {
  printHostBanner("Ablation: graph fused vs staged schedules");
  const auto proto = Protocol::fromArgs(argc, argv);
  const auto host = platform::queryHost();
  auto cs = chains();

  std::vector<Row> rows;
  Table t({"chain", "size", "path", "staged", "fused", "fused speedup"});
  for (const auto& c : cs) {
    for (const auto& r : paperResolutions()) {
      for (KernelPath p : benchPaths()) {
        if (!pathAvailable(p)) continue;
        Row row;
        row.chain = c.name;
        row.resolution = r.label;
        row.path = pathLabel(p);
        row.staged_bytes = c.g.stagedBytes(r.size.width, r.size.height);
        row.staged_s = measureSchedule(c.g, false, p, r.size, proto).mean;
        row.fused_s = measureSchedule(c.g, true, p, r.size, proto).mean;
        rows.push_back(row);
        t.addRow({row.chain, r.label, row.path, fmtSeconds(row.staged_s),
                  fmtSeconds(row.fused_s),
                  fmtSpeedup(row.staged_s / row.fused_s)});
      }
    }
  }
  t.print();
  std::printf(
      "\n(Both schedules are bit-identical on every path; the speedup is\n"
      "pure cache blocking of the declared chain. The photo chain carries\n"
      "f32 intermediates — the largest staged footprint, so the largest\n"
      "expected gap once images outgrow the last-level cache.)\n");

  std::FILE* f = std::fopen("BENCH_graph.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_graph.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_graph\",\n");
  std::fprintf(f, "  \"host\": {\"brand\": \"%s\", \"logical_cpus\": %d, "
                  "\"l1d_kb\": %d, \"l2_kb\": %d, \"l3_kb\": %d},\n",
               host.brand.c_str(), host.logical_cpus, host.l1d_kb, host.l2_kb,
               host.l3_kb);
  std::fprintf(f, "  \"protocol\": {\"images\": %d, \"cycles\": %d},\n",
               proto.images, proto.cycles);
  std::fprintf(f, "  \"chains\": {");
  for (std::size_t i = 0; i < cs.size(); ++i)
    std::fprintf(f, "\"%s\": \"%s\"%s", cs[i].name,
                 cs[i].g.signature().c_str(), i + 1 < cs.size() ? ", " : "");
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"chain\": \"%s\", \"resolution\": \"%s\", \"path\": \"%s\", "
        "\"staged_bytes\": %zu, \"staged_s\": %.6e, \"fused_s\": %.6e, "
        "\"speedup\": %.3f}%s\n",
        row.chain.c_str(), row.resolution.c_str(), row.path.c_str(),
        row.staged_bytes, row.staged_s, row.fused_s,
        row.staged_s / row.fused_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_graph.json\n");
  return 0;
}
