// Table III reproduction: Binary Thresholding, Gaussian Blur, Sobel Filter
// and Edge Detection on the 8 mpx (3264x2448) image.
#include <cstdio>

#include "common.hpp"

using namespace simdcv;
using platform::BenchKernel;

int main(int argc, char** argv) {
  bench::printHostBanner("Table III: BinThr / GauBlu / SobFil / EdgDet @ 8mpx");
  const auto proto = bench::Protocol::fromArgs(argc, argv);
  const Size size{3264, 2448};

  const BenchKernel kernels[] = {BenchKernel::ThresholdU8,
                                 BenchKernel::GaussianBlur, BenchKernel::Sobel,
                                 BenchKernel::EdgeDetect};

  std::printf("-- host-measured (mean over %d runs per cell) --\n",
              proto.images * proto.cycles);
  std::vector<std::string> header{"Benchmark"};
  for (auto p : bench::benchPaths()) header.push_back(bench::pathLabel(p));
  header.push_back("SSE2 speedup");
  header.push_back("NEON(emu) speedup");
  bench::Table t(header);
  std::vector<std::vector<std::string>> csv;
  for (BenchKernel k : kernels) {
    std::vector<std::string> row{platform::toString(k)};
    bench::Measurement autoArm, sse2Arm, neonArm;
    for (auto p : bench::benchPaths()) {
      const auto m = bench::measureKernel(k, p, size, proto);
      row.push_back(bench::fmtSeconds(m.stats.mean));
      if (p == KernelPath::Auto) autoArm = m;
      if (p == KernelPath::Sse2) sse2Arm = m;
      if (p == KernelPath::Neon) neonArm = m;
    }
    row.push_back(bench::fmtSpeedup(bench::speedupOf(autoArm, sse2Arm)));
    row.push_back(bench::fmtSpeedup(bench::speedupOf(autoArm, neonArm)));
    csv.push_back(row);
    t.addRow(std::move(row));
  }
  t.print();
  bench::writeCsv("table3_host.csv", header, csv);

  std::printf("\n-- model-simulated Table III (paper platforms, 8mpx) --\n");
  for (BenchKernel k : kernels) {
    std::printf("%s:\n", platform::toString(k));
    bench::printSimulatedPlatformTable(k, size);
  }
  return 0;
}
