// Figure 3 reproduction: Binary Image Thresholding relative speed-up.
#include "fig_speedup_common.hpp"

int main(int argc, char** argv) {
  return simdcv::bench::runSpeedupFigure(
      "Figure 3: Binary Image Thresholding relative speed-up",
      "fig3_threshold_speedup", simdcv::platform::BenchKernel::ThresholdU8,
      argc, argv);
}
