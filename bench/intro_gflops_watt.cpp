// Intro reproduction: the GFLOPS/Watt three-tier classification the paper
// cites from Dongarra & Luszczek [7] — desktop/server processors ~1
// GFLOPS/Watt (tier 1), GPU accelerators ~2 (tier 2), ARM ~4 (tier 3), with
// the iPad 2's Cortex-A9 achieving up to 4 GFLOPS/Watt. The catalog's ten
// platforms are classified with the same metric.
#include <cstdio>

#include "simdcv.hpp"

using namespace simdcv;

int main() {
  bench::printHostBanner("Intro: GFLOPS/Watt three-tier classification");

  bench::Table t({"Platform", "DP LINPACK GFLOPS", "Active W", "GFLOPS/W", "Tier"});
  int tierCount[4] = {};
  for (const auto& p : platform::platformCatalog()) {
    char gf[32], w[32], e[32];
    std::snprintf(gf, sizeof(gf), "%.1f", p.linpack_dp_gflops);
    std::snprintf(w, sizeof(w), "%.2f", p.tdp_watts);
    std::snprintf(e, sizeof(e), "%.2f", platform::gflopsPerWatt(p));
    const int tier = platform::efficiencyTier(p);
    ++tierCount[tier];
    t.addRow({p.name, gf, w, e, std::to_string(tier)});
  }
  t.print();

  std::printf(
      "\ntier populations: tier1 (~1 GF/W, desktop/server) = %d, "
      "tier2 (~2, GPU class) = %d, tier3 (~4, ARM) = %d\n",
      tierCount[1], tierCount[2], tierCount[3]);
  std::printf(
      "paper's claim (Section I, citing [7]): desktop/server x86 sits in\n"
      "tier 1 at ~1 GFLOPS/W while ARM reaches tier 3 at ~4 GFLOPS/W (the\n"
      "iPad 2's dual Cortex-A9 measured 4 GF/W). The catalog reproduces the\n"
      "split: every x86 part classifies tier 1, every Cortex-A9 SoC tier 3.\n"
      "The two Cortex-A8 parts land in tier 2 — their VFPLite unit has no\n"
      "pipelined double-precision path, which is precisely the deficiency\n"
      "ARM fixed in the A9 generation the paper's Section I describes.\n");
  return 0;
}
