// Figure 5 reproduction: Sobel Filter relative speed-up factor.
#include "fig_speedup_common.hpp"

int main(int argc, char** argv) {
  return simdcv::bench::runSpeedupFigure(
      "Figure 5: Sobel Filter relative speed-up", "fig5_sobel_speedup",
      simdcv::platform::BenchKernel::Sobel, argc, argv);
}
