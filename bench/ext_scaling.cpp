// ext_scaling: thread-scaling extension beyond the paper's single-core
// protocol. Measures B1 (convert), B2 (threshold), B3 (Gaussian) and B5
// (edge detect) at 1/2/4/N threads for the scalar-novec, autovec and best
// HAND SIMD paths at 5 mpx, and emits ext_scaling.csv with absolute
// throughput plus speedup vs the 1-thread run of the same path.
//
// The paper-reproduction binaries (fig*/table*) are untouched: the runtime
// defaults to a single thread, and this binary restores that default before
// exiting. SIMD-within-a-core and threads-across-cores are the two
// orthogonal axes; the CSV makes their composition visible.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "simdcv.hpp"

namespace simdcv::bench {
namespace {

using platform::BenchKernel;

struct KernelCase {
  BenchKernel kernel;
  const char* label;
};

int run(int argc, char** argv) {
  printHostBanner("ext_scaling: band-parallel thread scaling (2592x1920)");
  const auto proto = Protocol::fromArgs(argc, argv);
  const Size size{2592, 1920};

  const std::vector<KernelCase> kernels = {
      {BenchKernel::ConvertF32S16, "B1-convert"},
      {BenchKernel::ThresholdU8, "B2-threshold"},
      {BenchKernel::GaussianBlur, "B3-gaussian"},
      {BenchKernel::EdgeDetect, "B5-edge"},
  };

  std::vector<KernelPath> paths = {KernelPath::ScalarNoVec, KernelPath::Auto};
  paths.push_back(pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2
                                                  : KernelPath::Neon);

  std::vector<int> threadCounts = {1, 2, 4, runtime::maxHardwareThreads()};
  std::sort(threadCounts.begin(), threadCounts.end());
  threadCounts.erase(std::unique(threadCounts.begin(), threadCounts.end()),
                     threadCounts.end());

  const double mpx = static_cast<double>(size.area()) / 1e6;
  std::vector<std::string> header{"kernel", "path",       "threads",
                                  "mean_s", "mpx_per_s",  "speedup_vs_1t"};
  std::vector<std::vector<std::string>> csv;

  for (const auto& kc : kernels) {
    std::printf("-- %s --\n", kc.label);
    Table t({"path", "threads", "mean", "Mpx/s", "vs 1 thread"});
    for (KernelPath path : paths) {
      double base = 0;  // 1-thread mean for this path
      for (int threads : threadCounts) {
        runtime::setNumThreads(threads);
        const auto m = measureKernel(kc.kernel, path, size, proto);
        if (threads == 1) base = m.stats.mean;
        const double tput = m.stats.mean > 0 ? mpx / m.stats.mean : 0;
        const double scale = m.stats.mean > 0 ? base / m.stats.mean : 0;
        char tputBuf[32];
        std::snprintf(tputBuf, sizeof(tputBuf), "%.1f", tput);
        t.addRow({pathLabel(path), std::to_string(threads),
                  fmtSeconds(m.stats.mean), tputBuf, fmtSpeedup(scale)});
        csv.push_back({kc.label, pathLabel(path), std::to_string(threads),
                       fmtSeconds(m.stats.mean), tputBuf,
                       fmtSpeedup(scale)});
      }
    }
    t.print();
    std::printf("\n");
  }
  runtime::setNumThreads(1);  // restore the paper default

  writeCsv("ext_scaling.csv", header, csv);
  std::printf(
      "\n(SIMD and threading compose: each row's Mpx/s is one point on the\n"
      "vectorization-x-cores plane. The paper's protocol is the threads=1\n"
      "column; nothing in the fig*/table* binaries changes.)\n");
  return 0;
}

}  // namespace
}  // namespace simdcv::bench

int main(int argc, char** argv) { return simdcv::bench::run(argc, argv); }
