// Ablation A3: AVX2 versus SSE2 — the extension the paper's Section VI
// names as future work. Related work it cites measured AVX at 1.58-1.88x
// over SSE on compute-bound HPC kernels [19] and >=1.63x on single-precision
// data mining kernels [21][22]; memory-bound image kernels cap lower.
#include <cstdio>
#include <vector>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

double timeIt(const std::function<void()>& fn, int reps) {
  bench::Timer t;
  t.start();
  for (int i = 0; i < reps; ++i) fn();
  return t.stop() / reps;
}

}  // namespace

int main() {
  bench::printHostBanner("Ablation A3: AVX2 vs SSE2 (paper future work)");
  if (!pathAvailable(KernelPath::Avx2)) {
    std::printf("host has no AVX2; nothing to compare.\n");
    return 0;
  }
  const int reps = 30;

  bench::Table t({"kernel", "SSE2", "AVX2", "AVX2/SSE2", "paper-cited AVX/SSE"});

  {
    // Compute-light, memory-bound conversion.
    const std::size_t n = 1 << 22;
    const Mat img = bench::makeFloatScene(bench::Scene::Natural, {2048, 2048}, 1);
    const float* src = img.ptr<float>(0);
    std::vector<std::int16_t> dst(n);
    const double sse = timeIt(
        [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::Sse2); }, reps);
    const double avx = timeIt(
        [&] { core::cvt32f16s(src, dst.data(), n, KernelPath::Avx2); }, reps);
    t.addRow({"cvt 32f->16s (4M px)", bench::fmtSeconds(sse),
              bench::fmtSeconds(avx), bench::fmtSpeedup(sse / avx), "-"});
  }
  {
    // L1-resident conversion: the compute-bound case the citations cover.
    const std::size_t n = 2048;
    std::vector<float> src(n);
    bench::Rng rng(2);
    for (auto& v : src) v = static_cast<float>(rng.uniform(-4e4, 4e4));
    std::vector<std::int16_t> dst(n);
    const double sse = timeIt(
        [&] { core::cvt32f16s(src.data(), dst.data(), n, KernelPath::Sse2); },
        reps * 2000);
    const double avx = timeIt(
        [&] { core::cvt32f16s(src.data(), dst.data(), n, KernelPath::Avx2); },
        reps * 2000);
    t.addRow({"cvt 32f->16s (L1, 2k px)", bench::fmtSeconds(sse),
              bench::fmtSeconds(avx), bench::fmtSpeedup(sse / avx),
              "1.58-1.88x [19]"});
  }
  {
    const Mat img = bench::makeScene(bench::Scene::Noise, {2048, 2048}, 3);
    Mat d1, d2;
    const double sse = timeIt(
        [&] {
          imgproc::threshold(img, d1, 128, 255, imgproc::ThresholdType::Binary,
                             KernelPath::Sse2);
        },
        reps);
    const double avx = timeIt(
        [&] {
          imgproc::threshold(img, d2, 128, 255, imgproc::ThresholdType::Binary,
                             KernelPath::Avx2);
        },
        reps);
    t.addRow({"threshold u8 (4M px)", bench::fmtSeconds(sse),
              bench::fmtSeconds(avx), bench::fmtSpeedup(sse / avx), "-"});
  }
  {
    // Compute-heavy separable blur, single precision.
    const Mat img = bench::makeScene(bench::Scene::Natural, {1024, 1024}, 4);
    Mat d1, d2;
    const double sse = timeIt(
        [&] {
          imgproc::GaussianBlur(img, d1, {7, 7}, 1.0, 0.0,
                                imgproc::BorderType::Reflect101,
                                KernelPath::Sse2);
        },
        reps);
    const double avx = timeIt(
        [&] {
          imgproc::GaussianBlur(img, d2, {7, 7}, 1.0, 0.0,
                                imgproc::BorderType::Reflect101,
                                KernelPath::Avx2);
        },
        reps);
    t.addRow({"GaussianBlur 7x7 (1M px)", bench::fmtSeconds(sse),
              bench::fmtSeconds(avx), bench::fmtSpeedup(sse / avx),
              ">=1.63x sp [21]"});
  }
  t.print();
  std::printf(
      "\nReading: doubling register width only pays where compute dominates;\n"
      "streaming kernels hit the memory roofline and show little gain —\n"
      "consistent with the cited AVX studies, which used cache-resident\n"
      "LINPACK/data-mining kernels.\n");
  return 0;
}
